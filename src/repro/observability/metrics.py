"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the numeric side of :mod:`repro.observability` — the span
tracer answers "where did the time go", the registry answers "how much work
was done": MACs executed, GEMM/conv kernel launches, bytes moved over the
simulated wire, allreduce calls, cache hits.

Design constraints, in order:

1. **Zero overhead when disabled.**  Hot paths guard every update with the
   module-level :data:`COLLECT` flag (a plain attribute load — no function
   call, no allocation).  The instrumented kernels in :mod:`repro.tensor`
   check it directly.
2. **Thread-safe when enabled.**  The simulator and future data-loading
   workers may update counters concurrently; every mutation takes the
   metric's lock (plain ``+=`` is not atomic across bytecode boundaries).
3. **Prometheus-flavoured API.**  ``registry.counter("bytes_moved")``,
   ``counter.labels(phase="warmup").inc(n)``, ``histogram.observe(v)`` —
   familiar shapes, no external dependency.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "COLLECT",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "diff_counters",
]

# Module-level collection switch.  Instrumented code reads this attribute
# directly (``if metrics.COLLECT: ...``) so the disabled path costs one
# dict lookup and a branch.
COLLECT = False


def enable_metrics() -> None:
    """Turn on metric collection process-wide."""
    global COLLECT
    COLLECT = True


def disable_metrics() -> None:
    global COLLECT
    COLLECT = False


def metrics_enabled() -> bool:
    return COLLECT


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _label_suffix(key: tuple) -> str:
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class _Metric:
    """Shared plumbing: a name, a lock, and labelled children of same type."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._children: dict[tuple, _Metric] = {}

    def labels(self, **labels) -> "_Metric":
        """Child metric for a label combination (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = type(self)(self.name + _label_suffix(key))
                    self._children[key] = child
        return child

    def _iter_children(self):
        return list(self._children.values())


class Counter(_Metric):
    """Monotonically increasing count."""

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        """Own count plus all labelled children (the family total)."""
        return self._value + sum(c._value for c in self._iter_children())

    def collect(self, out: dict) -> None:
        out[self.name] = self._value
        for child in self._iter_children():
            child.collect(out)


class Gauge(_Metric):
    """A value that can go up and down (e.g. current LR, live parameters)."""

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self._value = v

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def collect(self, out: dict) -> None:
        out[self.name] = self._value
        for child in self._iter_children():
            child.collect(out)


class Histogram(_Metric):
    """Streaming distribution; keeps raw observations for exact quantiles.

    The workloads this library profiles observe at most a few thousand
    values per run (per-epoch seconds, per-iteration bytes), so storing
    raw samples is both exact and cheap.
    """

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._values: list[float] = []

    def observe(self, v: float) -> None:
        with self._lock:
            self._values.append(float(v))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(sum(self._values))

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile (numpy's default method)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            xs = sorted(self._values)
        if not xs:
            raise ValueError(f"histogram {self.name!r} has no observations")
        pos = q * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    def collect(self, out: dict) -> None:
        if self._values:
            out[self.name] = {
                "count": self.count,
                "sum": self.sum,
                "min": min(self._values),
                "max": max(self._values),
                "p50": self.quantile(0.5),
                "p90": self.quantile(0.9),
                "p99": self.quantile(0.99),
            }
        else:
            out[self.name] = {"count": 0, "sum": 0.0}
        for child in self._iter_children():
            child.collect(out)


class MetricsRegistry:
    """Name → metric store with get-or-create accessors and snapshots."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- accessors ------------------------------------------------------

    def _get_or_create(self, name: str, cls, description: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, description)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, Counter, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, description)

    # -- export ---------------------------------------------------------

    def counters(self) -> dict:
        """Flat ``name -> value`` map of every counter (incl. labelled)."""
        out: dict = {}
        for m in list(self._metrics.values()):
            if isinstance(m, Counter):
                m.collect(out)
        return out

    def snapshot(self) -> dict:
        """Full structured snapshot, JSON-serializable."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for m in list(self._metrics.values()):
            if isinstance(m, Counter):
                m.collect(counters)
            elif isinstance(m, Gauge):
                m.collect(gauges)
            elif isinstance(m, Histogram):
                m.collect(histograms)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Drop every registered metric (used between profiled runs)."""
        with self._lock:
            self._metrics.clear()


def diff_counters(after: dict, before: dict) -> dict:
    """Counter deltas between two :meth:`MetricsRegistry.counters` maps,
    keeping only counters that actually moved."""
    out = {}
    for name, value in after.items():
        delta = value - before.get(name, 0)
        if delta:
            out[name] = delta
    return out


# The process-global default registry.  Instrumented library code records
# here; tests and the CLI can swap in a fresh one via ``reset()``.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
