"""Unified observability layer: span tracing, metrics, kernel profiling.

Three cooperating pieces:

* :mod:`repro.observability.trace` — nested span timelines with exclusive
  time per span, exportable as JSON or Chrome-trace format.
* :mod:`repro.observability.metrics` — a counters/gauges/histograms
  registry that absorbs the engine's MAC accounting and adds bytes-moved,
  allreduce-call, kernel-launch and cache-hit counters.
* the profiling hooks threaded through the library's hot paths
  (:mod:`repro.tensor`, :mod:`repro.nn`, :mod:`repro.core.trainer`,
  :mod:`repro.distributed`), all gated on module-level flags so the
  disabled path costs one attribute check and allocates nothing.

Typical use::

    from repro import observability as obs

    obs.enable()                      # tracing + metrics
    ... run a workload ...
    obs.get_tracer().write_chrome_trace("trace.json")
    print(obs.get_registry().snapshot())
    obs.disable()

or scoped::

    with obs.observe() as (tracer, registry):
        ... run ...
    tracer.summary(); registry.counters()
"""

from __future__ import annotations

from contextlib import contextmanager

from . import metrics, trace
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_counters,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from .trace import (
    Span,
    Tracer,
    disable_module_spans,
    disable_tracing,
    enable_module_spans,
    enable_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "metrics",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Tracer",
    "span",
    "traced",
    "diff_counters",
    "get_registry",
    "get_tracer",
    "enable",
    "disable",
    "observe",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "enable_module_spans",
    "disable_module_spans",
]


def enable(
    tracing: bool = True, metric_collection: bool = True, module_spans: bool = False
) -> None:
    """Turn on the requested observability features process-wide."""
    if tracing:
        enable_tracing()
    if metric_collection:
        enable_metrics()
    if module_spans:
        enable_module_spans()


def disable() -> None:
    """Turn every observability feature off (the zero-overhead default)."""
    disable_tracing()
    disable_metrics()
    disable_module_spans()


@contextmanager
def observe(tracing: bool = True, metric_collection: bool = True, module_spans: bool = False):
    """Scoped enablement; restores the previous flags on exit.

    Yields ``(tracer, registry)`` — the global instances, *not* cleared on
    entry, so nest-friendly; call ``tracer.clear()`` / ``registry.reset()``
    yourself for an isolated capture.
    """
    prev = (trace.ENABLED, metrics.COLLECT, trace.MODULE_SPANS)
    enable(tracing=tracing, metric_collection=metric_collection, module_spans=module_spans)
    try:
        yield get_tracer(), get_registry()
    finally:
        trace.ENABLED, metrics.COLLECT, trace.MODULE_SPANS = prev
