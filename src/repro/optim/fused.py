"""Fused flat-arena optimizers: one vectorized update for the whole model.

:class:`FusedOptimizer` owns a :class:`repro.nn.ParameterArena`: all
parameters alias one contiguous float32 buffer, optimizer state (momentum
buffer, Adam moments) lives in flat slabs of the same length, and weight
decay is applied through a precomputed per-element mask (zero on
``no_decay`` parameters).  A step is then a handful of in-place vector
ops instead of a Python loop over every tensor, dispatched through the
backend registry (:mod:`repro.tensor.backend`) so the ``fast`` backend
can run the allocation-free variants.

Three concrete optimizers share the machinery:

- :class:`FusedSGD` — drop-in for :class:`repro.optim.SGD`; bit-exact
  vs the per-tensor loop (``sgd_update``, bit-exact parity tag).
- :class:`FusedAdam` — drop-in for :class:`repro.optim.Adam`; bit-exact
  vs the loop (``adam_update``, bit-exact parity tag).
- :class:`FusedLAMB` — drop-in for :class:`repro.optim.LAMB`; matches
  the loop within tolerance (``lamb_update`` carries the tolerance tag:
  its per-layer trust ratios come from segmented ``np.add.reduceat``
  norms whose summation order differs from per-tensor dots).

Bit-exactness holds whenever every parameter has a gradient: the same
elementwise float32 operations run in the same order per element, only
batched.  The one documented semantic difference: the per-tensor loops
*skip* parameters whose grad is ``None`` (no decay, no momentum/moment
update, no step-count advance), while the fused step treats a missing
gradient as zero — decay, moments, and the global step counter still
advance on those segments.  In the DDP simulator every parameter always
receives an (averaged) gradient, so the paths agree exactly there.

Anything that rebinds ``p.data`` (the AMP cast round-trip, a fresh
``rebind``) invalidates the arena; :meth:`FusedOptimizer._ensure_arena`
detects that per step, rebuilds the arena, and resets fused state —
exactly as re-instantiating the optimizer would.  Use
:meth:`FusedOptimizer.state_dict` / :meth:`~FusedOptimizer.load_state_dict`
to carry optimizer state across such a rebuild.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.arena import ParameterArena
from ..nn.module import Parameter
from ..observability import metrics as _metrics
from ..tensor import backend as _backend

from .optimizer import Optimizer

__all__ = ["FusedOptimizer", "FusedSGD", "FusedAdam", "FusedLAMB"]


class FusedOptimizer(Optimizer):
    """Shared arena/rebind/state machinery for the fused optimizers.

    Subclasses implement :meth:`_fused_update` (the per-step vector
    chain, usually one backend-registry dispatch), and optionally
    :meth:`_reset_fused_state` (zero/drop flat state slabs on arena
    (re)build) plus the :meth:`_fused_state`/:meth:`_load_fused_state`
    pair for checkpointing.
    """

    def __init__(self, params: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.weight_decay = weight_decay
        self._arena: ParameterArena | None = None
        self._grad_buf: np.ndarray | None = None
        self._tmp: np.ndarray | None = None
        self._decay_mask: np.ndarray | None = None

    # ------------------------------------------------------------------

    def _ensure_arena(self) -> ParameterArena:
        """(Re)build the arena lazily; AMP casts or ``rebind`` invalidate it."""
        arena = self._arena
        if (
            arena is not None
            and len(arena.params) == len(self.params)
            and all(a is b for a, b in zip(arena.params, self.params))
            and arena.intact()
        ):
            return arena
        if arena is not None and _metrics.COLLECT:
            _metrics.REGISTRY.counter("arena.rebuilds").inc()
        arena = self._arena = ParameterArena(self.params)
        self._grad_buf = np.empty(arena.size, dtype=np.float32)
        self._tmp = np.empty(arena.size, dtype=np.float32)
        mask = np.zeros(arena.size, dtype=np.float32)
        if self.weight_decay > 0:
            for p, off, size in arena.segments():
                if not getattr(p, "no_decay", False):
                    mask[off : off + size] = self.weight_decay
        self._decay_mask = mask
        # Optimizer state cannot survive a relayout: drop it, exactly as
        # re-instantiating the optimizer would (checkpoint via
        # state_dict/load_state_dict to carry it across).
        self._reset_fused_state(arena)
        return arena

    def rebind(self, params: Iterable[Parameter]) -> None:
        super().rebind(params)
        self._arena = None

    # ------------------------------------------------------------------

    def step(self) -> None:
        arena = self._ensure_arena()
        grad = arena.gather_grad(out=self._grad_buf)
        self._fused_update(arena.flat, grad)

    def step_flat(self, grad_vec: np.ndarray) -> None:
        """Apply one update from an externally aggregated flat gradient
        (the DDP simulator's allreduce output), skipping the gather."""
        arena = self._ensure_arena()
        if grad_vec.shape != (arena.size,):
            raise ValueError(
                f"flat gradient has shape {grad_vec.shape}, need ({arena.size},)"
            )
        # Work on our scratch copy: the update mutates the gradient buffer.
        np.copyto(self._grad_buf, grad_vec)
        self._fused_update(arena.flat, self._grad_buf)

    # -- subclass hooks ------------------------------------------------

    def _reset_fused_state(self, arena: ParameterArena) -> None:
        """Drop/zero flat state slabs after an arena (re)build."""

    def _fused_update(self, flat: np.ndarray, g: np.ndarray) -> None:
        """In-place parameter update over the flat vector; ``g`` is clobbered."""
        raise NotImplementedError

    # -- state persistence ---------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot fused state as plain arrays (copies, arena-layout order).

        The snapshot is keyed to the arena size only, so it survives an
        arena *rebuild* (AMP cast → same shapes, fresh buffer) but not a
        relayout to a different parameter set.
        """
        arena = self._ensure_arena()
        out: dict = {"arena_size": arena.size}
        out.update(self._fused_state())
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into the current arena."""
        arena = self._ensure_arena()
        if int(state["arena_size"]) != arena.size:
            raise ValueError(
                f"state dict was taken over an arena of {state['arena_size']} "
                f"elements, current arena has {arena.size}"
            )
        self._load_fused_state(state)

    def _fused_state(self) -> dict:
        return {}

    def _load_fused_state(self, state: dict) -> None:
        pass


class FusedSGD(FusedOptimizer):
    """SGD + momentum + weight decay over one flat parameter vector.

    Bit-exact vs :class:`repro.optim.SGD` whenever every parameter has a
    gradient (``sgd_update`` carries the bit-exact parity tag); see the
    module docstring for the grad-is-``None`` difference.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self.nesterov = nesterov
        self._momentum_buf: np.ndarray | None = None

    def _reset_fused_state(self, arena: ParameterArena) -> None:
        self._momentum_buf = None

    def _fused_update(self, flat: np.ndarray, g: np.ndarray) -> None:
        """In-place ``flat -= lr * d`` where ``d`` is the decayed,
        momentum-filtered gradient.  ``g`` is clobbered.

        The vector chain itself lives in the backend layer
        (:meth:`repro.tensor.backend.Backend.sgd_update`) so backends can
        fuse or reorder passes; the arena/mask bookkeeping stays here.
        """
        self._momentum_buf = _backend.active().sgd_update(
            flat,
            g,
            self._tmp,
            self._decay_mask if self.weight_decay > 0 else None,
            self._momentum_buf,
            self.lr,
            self.momentum,
            self.nesterov,
        )

    def _fused_state(self) -> dict:
        buf = self._momentum_buf
        return {"momentum_buf": None if buf is None else buf.copy()}

    def _load_fused_state(self, state: dict) -> None:
        buf = state["momentum_buf"]
        self._momentum_buf = None if buf is None else np.asarray(buf, dtype=np.float32).copy()


class FusedAdam(FusedOptimizer):
    """Adam (Kingma & Ba 2015) over one flat parameter vector.

    The first/second moments are flat slabs updated in one dispatched
    vector chain (``adam_update``, bit-exact parity tag), so a step is a
    dozen vector ops regardless of how many tensors the model has.

    Bit-exact vs the in-place per-tensor :class:`repro.optim.Adam` loop
    whenever every parameter has a gradient.  The loop keeps a *per
    parameter* step count and skips ``None``-grad params; the fused
    variant keeps one *global* step count and treats missing gradients
    as zero — identical whenever every parameter always has a gradient
    (the DDP allreduce case), divergent otherwise.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.betas = betas
        self.eps = eps
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def _reset_fused_state(self, arena: ParameterArena) -> None:
        self._m = np.zeros(arena.size, dtype=np.float32)
        self._v = np.zeros(arena.size, dtype=np.float32)
        self._t = 0

    def _fused_update(self, flat: np.ndarray, g: np.ndarray) -> None:
        self._t += 1
        _backend.active().adam_update(
            flat,
            g,
            self._m,
            self._v,
            self._tmp,
            self._decay_mask if self.weight_decay > 0 else None,
            self.lr,
            self.betas[0],
            self.betas[1],
            self.eps,
            self._t,
        )

    def _fused_state(self) -> dict:
        return {"m": self._m.copy(), "v": self._v.copy(), "step": self._t}

    def _load_fused_state(self, state: dict) -> None:
        np.copyto(self._m, np.asarray(state["m"], dtype=np.float32))
        np.copyto(self._v, np.asarray(state["v"], dtype=np.float32))
        self._t = int(state["step"])


class FusedLAMB(FusedOptimizer):
    """LAMB (You et al. 2020) over one flat parameter vector.

    Layerwise trust ratios need per-tensor norms, which on the flat
    arena become *segmented* reductions: segment boundaries are
    precomputed from the arena layout, and the ``fast`` backend computes
    every norm in two vector ops (square the slab, ``np.add.reduceat``).
    ``lamb_update`` carries the tolerance parity tag — the reduceat
    summation order differs from the reference's per-segment dots — so
    :class:`FusedLAMB` matches the :class:`repro.optim.LAMB` loop within
    that tolerance rather than bit-for-bit.

    Same grad-is-``None`` semantics as :class:`FusedAdam`: the loop
    skips such params (and their per-parameter step count), the fused
    variant treats them as zero-gradient segments under one global step
    count.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.betas = betas
        self.eps = eps
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0
        self._seg_starts: np.ndarray | None = None
        self._seg_sizes: np.ndarray | None = None

    def _reset_fused_state(self, arena: ParameterArena) -> None:
        self._m = np.zeros(arena.size, dtype=np.float32)
        self._v = np.zeros(arena.size, dtype=np.float32)
        self._t = 0
        self._seg_starts = np.asarray(arena.offsets, dtype=np.intp)
        self._seg_sizes = np.asarray(arena.sizes, dtype=np.intp)

    def _fused_update(self, flat: np.ndarray, g: np.ndarray) -> None:
        self._t += 1
        _backend.active().lamb_update(
            flat,
            g,
            self._m,
            self._v,
            self._tmp,
            self._decay_mask if self.weight_decay > 0 else None,
            self._seg_starts,
            self._seg_sizes,
            self.lr,
            self.betas[0],
            self.betas[1],
            self.eps,
            self._t,
        )

    def _fused_state(self) -> dict:
        return {"m": self._m.copy(), "v": self._v.copy(), "step": self._t}

    def _load_fused_state(self, state: dict) -> None:
        np.copyto(self._m, np.asarray(state["m"], dtype=np.float32))
        np.copyto(self._v, np.asarray(state["v"], dtype=np.float32))
        self._t = int(state["step"])
