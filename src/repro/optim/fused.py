"""Fused flat-arena SGD: one vectorized update for the whole model.

:class:`FusedSGD` is a drop-in replacement for :class:`repro.optim.SGD`
that owns a :class:`repro.nn.ParameterArena`: all parameters alias one
contiguous float32 buffer, the momentum state is a single flat buffer,
and weight decay is applied through a precomputed per-element mask (zero
on ``no_decay`` parameters).  A step is then four in-place vector ops
instead of a Python loop over every tensor.

The update is bit-exact vs the per-tensor loop whenever every parameter
has a gradient: the same elementwise float32 operations run in the same
order per element, only batched.  The one documented difference: the
per-tensor loop *skips* parameters whose grad is ``None`` (no decay, no
momentum update), while the fused step treats a missing gradient as zero
— so decay and momentum still advance on those segments.  In the DDP
simulator every parameter always receives an (averaged) gradient, so the
paths agree exactly there.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.arena import ParameterArena
from ..nn.module import Parameter
from ..observability import metrics as _metrics
from ..tensor import backend as _backend
from .sgd import SGD

__all__ = ["FusedSGD"]


class FusedSGD(SGD):
    """SGD + momentum + weight decay over one flat parameter vector."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr, momentum, weight_decay, nesterov)
        self._arena: ParameterArena | None = None
        self._momentum_buf: np.ndarray | None = None
        self._grad_buf: np.ndarray | None = None
        self._tmp: np.ndarray | None = None
        self._decay_mask: np.ndarray | None = None

    # ------------------------------------------------------------------

    def _ensure_arena(self) -> ParameterArena:
        """(Re)build the arena lazily; AMP casts or ``rebind`` invalidate it."""
        arena = self._arena
        if (
            arena is not None
            and len(arena.params) == len(self.params)
            and all(a is b for a, b in zip(arena.params, self.params))
            and arena.intact()
        ):
            return arena
        if arena is not None and _metrics.COLLECT:
            _metrics.REGISTRY.counter("arena.rebuilds").inc()
        arena = self._arena = ParameterArena(self.params)
        self._grad_buf = np.empty(arena.size, dtype=np.float32)
        self._tmp = np.empty(arena.size, dtype=np.float32)
        # Momentum state cannot survive a relayout: drop it, exactly as
        # re-instantiating the optimizer would.
        self._momentum_buf = None
        mask = np.zeros(arena.size, dtype=np.float32)
        if self.weight_decay > 0:
            for p, off, size in arena.segments():
                if not getattr(p, "no_decay", False):
                    mask[off : off + size] = self.weight_decay
        self._decay_mask = mask
        return arena

    def rebind(self, params: Iterable[Parameter]) -> None:
        super().rebind(params)
        self._arena = None

    # ------------------------------------------------------------------

    def step(self) -> None:
        arena = self._ensure_arena()
        grad = arena.gather_grad(out=self._grad_buf)
        self._fused_update(arena.flat, grad)

    def step_flat(self, grad_vec: np.ndarray) -> None:
        """Apply one update from an externally aggregated flat gradient
        (the DDP simulator's allreduce output), skipping the gather."""
        arena = self._ensure_arena()
        if grad_vec.shape != (arena.size,):
            raise ValueError(
                f"flat gradient has shape {grad_vec.shape}, need ({arena.size},)"
            )
        # Work on our scratch copy: the update mutates the gradient buffer.
        np.copyto(self._grad_buf, grad_vec)
        self._fused_update(arena.flat, self._grad_buf)

    def _fused_update(self, flat: np.ndarray, g: np.ndarray) -> None:
        """In-place ``flat -= lr * d`` where ``d`` is the decayed,
        momentum-filtered gradient.  ``g`` is clobbered.

        The vector chain itself lives in the backend layer
        (:meth:`repro.tensor.backend.Backend.sgd_update`) so backends can
        fuse or reorder passes; the arena/mask bookkeeping stays here.
        """
        self._momentum_buf = _backend.active().sgd_update(
            flat,
            g,
            self._tmp,
            self._decay_mask if self.weight_decay > 0 else None,
            self._momentum_buf,
            self.lr,
            self.momentum,
            self.nesterov,
        )
