"""LAMB optimizer (You et al. 2020) — layerwise-adaptive large-batch Adam.

LAMB runs the Adam moment machinery per tensor, then rescales each
tensor's update by a *trust ratio* ``‖w‖ / ‖u‖`` (1.0 when either norm
is zero), where ``u = m̂ / (√v̂ + eps) + wd·w`` uses decoupled weight
decay.  This keeps the update magnitude proportional to the weight
magnitude per layer, which is what lets large-batch training match
small-batch accuracy — the natural companion to Pufferfish's wide-model
large-batch regime.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["LAMB"]


class LAMB(Optimizer):
    """Per-tensor LAMB loop with allocation-free steps.

    Same in-place ``out=`` discipline as :class:`repro.optim.Adam`; the
    per-tensor norms are single BLAS dots over the raveled update.

    Grad-is-``None`` semantics: parameters whose ``grad`` is ``None`` are
    *skipped* entirely — no weight decay, no moment update, and their
    per-parameter step count does not advance.  The fused variant
    (:class:`repro.optim.FusedLAMB`) instead treats a missing gradient as
    zero under one global step count.  Unlike the Adam pair the two are
    not bit-identical even when every parameter has a gradient:
    ``lamb_update`` carries the tolerance parity tag because the fast
    backend's segmented ``np.add.reduceat`` norms sum in a different
    order than the per-tensor dots here.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            state = self._state_for(p)
            if not state:
                state["step"] = 0
                state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
                state["wk"] = np.empty_like(p.data)
                state["wk2"] = np.empty_like(p.data)
            state["step"] += 1
            t = state["step"]
            m, v = state["m"], state["v"]
            wk, wk2 = state["wk"], state["wk2"]
            m *= b1
            np.multiply(g, 1 - b1, out=wk)
            m += wk
            v *= b2
            np.multiply(g, 1 - b2, out=wk)
            wk *= g
            v += wk
            # wk becomes the denominator √(v̂) + eps, wk2 the update u.
            np.divide(v, 1 - b2**t, out=wk)
            np.sqrt(wk, out=wk)
            wk += self.eps
            np.divide(m, 1 - b1**t, out=wk2)
            wk2 /= wk
            if self.weight_decay > 0 and not getattr(p, "no_decay", False):
                np.multiply(p.data, self.weight_decay, out=wk)
                wk2 += wk
            w_flat = p.data.ravel()
            u_flat = wk2.ravel()
            w_norm = float(np.sqrt(np.dot(w_flat, w_flat)))
            u_norm = float(np.sqrt(np.dot(u_flat, u_flat)))
            ratio = w_norm / u_norm if w_norm > 0 and u_norm > 0 else 1.0
            wk2 *= self.lr * ratio
            p.data -= wk2
