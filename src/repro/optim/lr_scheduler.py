"""Learning-rate schedules used across the paper's experiments.

* :class:`MultiStepLR` — decay by ``gamma`` at milestone epochs (CIFAR:
  150/250 with 0.1; ImageNet: 30/60/80).
* :class:`LinearWarmup` — linear ramp over the first epochs, as in the
  large-batch ResNet-18 runs (0.1 → 1.6 over 5 epochs, following Goyal et
  al. 2017); composes with an inner schedule.
* :class:`ReduceLROnPlateau` — multiply by ``factor`` when the monitored
  metric stops improving (WikiText-2 LSTM: 0.25 on stalled val loss).
* :class:`StepDecayAt` — arbitrary {epoch: factor} decay map (used when
  Pufferfish switches to the low-rank net and halves the LR).
"""

from __future__ import annotations

from .optimizer import Optimizer

__all__ = ["MultiStepLR", "LinearWarmup", "ReduceLROnPlateau", "StepDecayAt", "CosineAnnealingLR"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer, base_lr: float | None = None):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr if base_lr is None else base_lr

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    def step(self, epoch: int, metric: float | None = None) -> None:
        raise NotImplementedError


class MultiStepLR(_Scheduler):
    """``lr = base * gamma^(number of passed milestones)``; call per epoch."""

    def __init__(self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def step(self, epoch: int, metric: float | None = None) -> None:
        passed = sum(1 for m in self.milestones if epoch >= m)
        self.optimizer.lr = self.base_lr * (self.gamma**passed)


class LinearWarmup(_Scheduler):
    """Linear ramp from ``start_lr`` to ``peak_lr`` over ``warmup_epochs``,
    then delegate to an optional inner schedule (evaluated with the epoch
    offset removed)."""

    def __init__(
        self,
        optimizer: Optimizer,
        start_lr: float,
        peak_lr: float,
        warmup_epochs: int,
        after: _Scheduler | None = None,
    ):
        super().__init__(optimizer, base_lr=peak_lr)
        self.start_lr = start_lr
        self.peak_lr = peak_lr
        self.warmup_epochs = warmup_epochs
        self.after = after

    def step(self, epoch: int, metric: float | None = None) -> None:
        if epoch < self.warmup_epochs:
            frac = (epoch + 1) / self.warmup_epochs
            self.optimizer.lr = self.start_lr + frac * (self.peak_lr - self.start_lr)
        elif self.after is not None:
            self.after.base_lr = self.peak_lr
            self.after.step(epoch, metric)
        else:
            self.optimizer.lr = self.peak_lr


class ReduceLROnPlateau(_Scheduler):
    """Decay when ``metric`` has not improved for ``patience`` evaluations."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.25,
        patience: int = 0,
        min_lr: float = 1e-6,
    ):
        super().__init__(optimizer)
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best: float | None = None
        self.bad_evals = 0

    def step(self, epoch: int, metric: float | None = None) -> None:
        if metric is None:
            return
        if self.best is None or metric < self.best - 1e-6:
            self.best = metric
            self.bad_evals = 0
        else:
            self.bad_evals += 1
            if self.bad_evals > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_evals = 0


class CosineAnnealingLR(_Scheduler):
    """Half-cosine decay from the base LR to ``min_lr`` over ``t_max``
    epochs (the common alternative to step decay for the paper's tasks)."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.t_max = t_max
        self.min_lr = min_lr

    def step(self, epoch: int, metric: float | None = None) -> None:
        import math

        t = min(max(epoch, 0), self.t_max)
        cos = (1 + math.cos(math.pi * t / self.t_max)) / 2
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos


class StepDecayAt(_Scheduler):
    """Multiply the LR by ``factors[epoch]`` the first time ``epoch`` is
    reached.  Factors compound with whatever LR is currently set, so this can
    wrap manual schedules (e.g. Pufferfish's LR halving at the switch epoch)."""

    def __init__(self, optimizer: Optimizer, factors: dict[int, float]):
        super().__init__(optimizer)
        self.factors = dict(factors)
        self._applied: set[int] = set()

    def step(self, epoch: int, metric: float | None = None) -> None:
        for e, f in self.factors.items():
            if epoch >= e and e not in self._applied:
                self.optimizer.lr *= f
                self._applied.add(e)
