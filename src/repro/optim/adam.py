"""Adam optimizer (Kingma & Ba 2015), used for the Transformer task."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Per-tensor Adam loop with allocation-free steps.

    Every update runs through ``out=`` ufunc forms over two per-parameter
    scratch buffers, so a step allocates nothing after the first — and
    the per-element float32 operation order is identical to both the
    naive expression chain and :class:`repro.optim.FusedAdam`'s arena
    update, keeping all three bit-exact (asserted in tests).

    Grad-is-``None`` semantics: parameters whose ``grad`` is ``None`` are
    *skipped* entirely — no weight decay, no moment update, and their
    per-parameter step count does not advance.  The fused variant
    (:class:`repro.optim.FusedAdam`) instead treats a missing gradient as
    zero under one global step count, so moments decay and the bias
    correction advances on those segments.  The two agree bit-for-bit
    whenever every parameter has a gradient (the DDP allreduce case).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            state = self._state_for(p)
            if not state:
                state["step"] = 0
                state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
                state["wk"] = np.empty_like(p.data)
                state["wk2"] = np.empty_like(p.data)
            state["step"] += 1
            t = state["step"]
            m, v = state["m"], state["v"]
            wk, wk2 = state["wk"], state["wk2"]
            if self.weight_decay > 0 and not getattr(p, "no_decay", False):
                np.multiply(p.data, self.weight_decay, out=wk2)
                wk2 += p.grad
                g = wk2
            else:
                g = p.grad
            m *= b1
            np.multiply(g, 1 - b1, out=wk)
            m += wk
            v *= b2
            np.multiply(g, 1 - b2, out=wk)
            wk *= g
            v += wk
            # wk becomes the denominator √(v̂) + eps, wk2 the scaled m̂.
            np.divide(v, 1 - b2**t, out=wk)
            np.sqrt(wk, out=wk)
            wk += self.eps
            np.divide(m, 1 - b1**t, out=wk2)
            wk2 *= self.lr
            wk2 /= wk
            p.data -= wk2
