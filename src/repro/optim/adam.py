"""Adam optimizer (Kingma & Ba 2015), used for the Transformer task."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay > 0 and not getattr(p, "no_decay", False):
                g = g + self.weight_decay * p.data
            state = self._state_for(p)
            if not state:
                state["step"] = 0
                state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
            state["step"] += 1
            t = state["step"]
            m, v = state["m"], state["v"]
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
