"""Optimizers and LR schedules."""

from .optimizer import Optimizer, clip_grad_norm
from .sgd import SGD
from .fused import FusedSGD
from .adam import Adam
from .lr_scheduler import (
    MultiStepLR,
    LinearWarmup,
    ReduceLROnPlateau,
    StepDecayAt,
    CosineAnnealingLR,
)

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "SGD",
    "FusedSGD",
    "Adam",
    "MultiStepLR",
    "LinearWarmup",
    "ReduceLROnPlateau",
    "StepDecayAt",
    "CosineAnnealingLR",
]
