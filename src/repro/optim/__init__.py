"""Optimizers and LR schedules."""

from .optimizer import Optimizer, clip_grad_norm
from .sgd import SGD
from .fused import FusedOptimizer, FusedSGD, FusedAdam, FusedLAMB
from .adam import Adam
from .lamb import LAMB
from .lr_scheduler import (
    MultiStepLR,
    LinearWarmup,
    ReduceLROnPlateau,
    StepDecayAt,
    CosineAnnealingLR,
)

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "SGD",
    "FusedOptimizer",
    "FusedSGD",
    "FusedAdam",
    "FusedLAMB",
    "Adam",
    "LAMB",
    "MultiStepLR",
    "LinearWarmup",
    "ReduceLROnPlateau",
    "StepDecayAt",
    "CosineAnnealingLR",
]
