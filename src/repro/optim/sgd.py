"""SGD with momentum and decoupled-from-norm weight decay.

Matches the paper's CIFAR/ImageNet recipe: momentum 0.9, L2 regularization
applied to conv/FC weights but *not* to BatchNorm parameters (Appendix I) —
parameters flagged ``no_decay`` are exempted.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay > 0 and not getattr(p, "no_decay", False):
                g = g + self.weight_decay * p.data
            if self.momentum > 0:
                state = self._state_for(p)
                buf = state.get("momentum")
                if buf is None:
                    buf = state["momentum"] = g.astype(np.float32).copy()
                else:
                    buf *= self.momentum
                    buf += g
                g = g + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * g
