"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`.

    Subclasses implement :meth:`step`.  Per-parameter state (momentum
    buffers, Adam moments) is keyed by parameter identity and survives
    in-place data updates.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self.state: dict[int, dict] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _state_for(self, p: Parameter) -> dict:
        s = self.state.get(id(p))
        if s is None:
            s = self.state[id(p)] = {}
        return s

    def rebind(self, params: Iterable[Parameter]) -> None:
        """Point the optimizer at a new parameter list, dropping stale state.

        Used when Pufferfish swaps the vanilla model for its factorized
        counterpart mid-training: the new U/V parameters start with fresh
        optimizer state, exactly as re-instantiating the optimizer would.
        """
        self.params = [p for p in params]
        self.state = {}


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm``.

    Returns the pre-clip norm (for logging), matching
    ``torch.nn.utils.clip_grad_norm_`` semantics.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-6)
        for p in params:
            p.grad *= scale
    return total
