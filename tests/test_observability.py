"""The observability layer: span tracer, metrics registry, kernel hooks.

Covers the contracts the rest of the library leans on: exclusive-time
math, exact quantiles, thread-safe counters, the zero-overhead disabled
path, ``count_macs`` back-compat through the registry, and the
re-entrancy/exception-safety fix in :mod:`repro.tensor.profiler`.
"""

import json
import threading

import numpy as np
import pytest

from repro import nn, observability as obs
from repro.observability import metrics as metrics_mod
from repro.observability import trace as trace_mod
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_counters,
)
from repro.observability.trace import Tracer, _NULL_SPAN
from repro.tensor import Tensor
from repro.tensor.profiler import add_macs, count_macs, macs_active, profiling_active


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts and ends with the global flags down and state clean."""
    obs.disable()
    obs.get_tracer().clear()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.get_tracer().clear()
    obs.get_registry().reset()


class FakeClock:
    """Deterministic monotonic clock: advance() by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_nesting_and_exclusive_time(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            clock.advance(1.0)  # exclusive outer work
            with tr.span("child_a"):
                clock.advance(2.0)
            clock.advance(0.5)  # more exclusive outer work
            with tr.span("child_b"):
                clock.advance(3.0)
        (outer,) = tr.spans("outer")
        (a,) = tr.spans("child_a")
        (b,) = tr.spans("child_b")
        assert outer.duration == pytest.approx(6.5)
        assert a.duration == pytest.approx(2.0)
        assert b.duration == pytest.approx(3.0)
        # exclusive = wall minus direct children
        assert outer.exclusive == pytest.approx(1.5)
        assert outer.child_time == pytest.approx(5.0)
        assert a.exclusive == pytest.approx(2.0)

    def test_exclusive_only_subtracts_direct_children(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    clock.advance(4.0)
        (a,) = tr.spans("a")
        (b,) = tr.spans("b")
        # c's time is charged to b, and b's (which includes c) to a — once.
        assert a.child_time == pytest.approx(4.0)
        assert a.exclusive == pytest.approx(0.0)
        assert b.exclusive == pytest.approx(0.0)

    def test_depth_and_attrs(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer", phase="warmup"):
            with tr.span("inner", epoch=3):
                pass
        (outer,) = tr.spans("outer")
        (inner,) = tr.spans("inner")
        assert outer.depth == 0 and inner.depth == 1
        assert outer.attrs == {"phase": "warmup"}
        assert inner.attrs == {"epoch": 3}

    def test_sibling_spans_same_name_accumulate(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        for _ in range(3):
            with tr.span("step"):
                clock.advance(1.0)
        assert len(tr.spans("step")) == 3
        assert tr.total("step") == pytest.approx(3.0)
        summary = tr.summary()
        assert summary["step"]["count"] == 3
        assert summary["step"]["total"] == pytest.approx(3.0)
        assert summary["step"]["exclusive"] == pytest.approx(3.0)

    def test_name_is_positional_only(self):
        # span attrs may legitimately be called "name" (phase spans do this).
        tr = Tracer(clock=FakeClock())
        with tr.span("phase", name="warmup"):
            pass
        (s,) = tr.spans("phase")
        assert s.attrs == {"name": "warmup"}

    def test_threads_get_independent_stacks(self):
        clock = FakeClock()  # shared but only read concurrently
        tr = Tracer(clock=clock)
        errors = []

        def worker(i):
            try:
                with tr.span(f"w{i}"):
                    pass
            except Exception as e:  # pragma: no cover - failure path
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        with tr.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        spans = tr.spans()
        assert len(spans) == 9
        # worker spans are top-level on their own threads, not children of main
        (main,) = tr.spans("main")
        assert main.child_time == pytest.approx(0.0)
        # worker spans open at depth 0 on their own threads (not nested
        # under main); thread idents may be recycled after join, so don't
        # assert 9 distinct ids.
        for i in range(8):
            (w,) = tr.spans(f"w{i}")
            assert w.depth == 0

    def test_chrome_trace_format(self, tmp_path):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        clock.advance(0.25)
        with tr.span("work", kind="test"):
            clock.advance(0.5)
        path = tr.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as f:
            doc = json.load(f)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["ts"] == pytest.approx(0.25e6)  # µs since tracer epoch
        assert ev["dur"] == pytest.approx(0.5e6)
        assert ev["args"] == {"kind": "test"}

    def test_clear_resets_epoch(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        clock.advance(10.0)
        tr.clear()
        with tr.span("s"):
            clock.advance(1.0)
        (s,) = tr.spans("s")
        assert s.start == pytest.approx(0.0)

    def test_span_survives_exceptions(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                clock.advance(1.0)
                raise RuntimeError("x")
        (s,) = tr.spans("boom")
        assert s.duration == pytest.approx(1.0)
        # stack unwound: the next span is top-level again
        with tr.span("after"):
            pass
        (after,) = tr.spans("after")
        assert after.depth == 0

    def test_traced_decorator_checks_flag_per_call(self):
        calls = []

        @trace_mod.traced("decorated")
        def fn():
            calls.append(1)
            return 42

        assert fn() == 42  # disabled: no span recorded
        assert obs.get_tracer().spans("decorated") == []
        obs.enable_tracing()
        assert fn() == 42
        assert len(obs.get_tracer().spans("decorated")) == 1
        assert calls == [1, 1]


class TestDisabledPath:
    def test_module_span_returns_shared_null_singleton(self):
        a = trace_mod.span("anything", attr=1)
        b = trace_mod.span("else")
        assert a is _NULL_SPAN and b is _NULL_SPAN  # no allocation
        with a:
            pass
        assert obs.get_tracer().spans() == []

    def test_enabled_module_span_records(self):
        obs.enable_tracing()
        with trace_mod.span("live"):
            pass
        assert len(obs.get_tracer().spans("live")) == 1

    def test_kernels_record_nothing_when_disabled(self):
        lin = nn.Linear(8, 8, bias=False)
        lin(Tensor(np.zeros((4, 8), dtype=np.float32)))
        assert obs.get_registry().counters() == {}
        assert not profiling_active()

    def test_observe_restores_prior_flags(self):
        assert not trace_mod.ENABLED and not metrics_mod.COLLECT
        with obs.observe() as (tracer, registry):
            assert trace_mod.ENABLED and metrics_mod.COLLECT
            assert tracer is obs.get_tracer()
            assert registry is obs.get_registry()
        assert not trace_mod.ENABLED and not metrics_mod.COLLECT


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_labels_children_roll_up(self):
        c = Counter("bytes")
        c.labels(phase="warmup").inc(10)
        c.labels(phase="lowrank").inc(5)
        c.labels(phase="warmup").inc(1)  # same child again
        c.inc(2)
        assert c.value == 18  # family total
        out = {}
        c.collect(out)
        assert out == {
            "bytes": 2,
            "bytes{phase=warmup}": 11,
            "bytes{phase=lowrank}": 5,
        }

    def test_thread_safety(self):
        c = Counter("c")

        def worker():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == pytest.approx(4.0)


class TestHistogram:
    def test_quantiles_match_numpy(self, rng):
        h = Histogram("h")
        xs = rng.standard_normal(257)
        for x in xs:
            h.observe(float(x))
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(float(np.quantile(xs, q)))

    def test_count_sum_collect(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        out = {}
        h.collect(out)
        rec = out["h"]
        assert rec["count"] == 4
        assert rec["sum"] == pytest.approx(10.0)
        assert rec["min"] == 1.0 and rec["max"] == 4.0
        assert rec["p50"] == pytest.approx(2.5)

    def test_empty_histogram(self):
        h = Histogram("h")
        out = {}
        h.collect(out)
        assert out["h"] == {"count": 0, "sum": 0.0}
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_quantile_bounds(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    def test_type_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_structure(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(2.0)
        snap = r.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # JSON-serializable end to end

    def test_diff_counters_keeps_only_moved(self):
        before = {"a": 1, "b": 5}
        after = {"a": 4, "b": 5, "c": 2}
        assert diff_counters(after, before) == {"a": 3, "c": 2}

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.reset()
        assert r.counters() == {}


# ---------------------------------------------------------------------------
# Kernel profiling bridge (count_macs back-compat + registry)
# ---------------------------------------------------------------------------

class TestKernelProfiling:
    def test_count_macs_matches_registry(self):
        """Same forward pass: scoped counter and registry agree exactly."""
        lin = nn.Linear(16, 8, bias=False)
        x = Tensor(np.zeros((4, 16), dtype=np.float32))
        obs.enable_metrics()
        with count_macs() as c:
            lin(x)
        assert c.total == 4 * 8 * 16
        assert obs.get_registry().counters()["macs"] == c.total
        assert obs.get_registry().counters()["gemm_calls"] == 1

    def test_macs_counted_once_despite_nesting(self):
        """Nested count_macs frames must not double-count into the registry."""
        obs.enable_metrics()
        with count_macs() as outer:
            with count_macs() as inner:
                add_macs(7)
        assert inner.total == 7
        assert outer.total == 0  # inner context shadows (pinned semantics)
        assert obs.get_registry().counters()["macs"] == 7

    def test_conv_records_conv_calls(self):
        conv = nn.Conv2d(3, 4, 3, padding=1, bias=False)
        obs.enable_metrics()
        conv(Tensor(np.zeros((1, 3, 6, 6), dtype=np.float32)))
        counters = obs.get_registry().counters()
        assert counters["conv_calls"] == 1
        assert counters["macs"] > 0

    def test_reentrancy_regression(self):
        """Re-entering one count_macs instance must not leak an active frame.

        The historical ``_prev``-chain implementation restored a stale
        pointer here, leaving ``macs_active()`` stuck on forever.
        """
        c = count_macs()
        with c:
            with c:
                add_macs(3)
            assert c.total == 3
            add_macs(2)
        assert c.total == 2
        assert not macs_active()
        add_macs(100)  # must be dropped — nothing is active
        assert not macs_active()

    def test_exception_safety(self):
        with pytest.raises(RuntimeError):
            with count_macs():
                raise RuntimeError("x")
        assert not macs_active()

    def test_leaked_inner_frame_is_discarded(self):
        """Exiting an outer frame discards frames leaked above it."""
        outer, inner = count_macs(), count_macs()
        outer.__enter__()
        inner.__enter__()  # never exited (abandoned generator scenario)
        add_macs(5)
        outer.__exit__(None, None, None)
        assert outer.total == 0  # the 5 went to the (leaked) inner frame
        assert not macs_active()


# ---------------------------------------------------------------------------
# End-to-end: trainer + CLI
# ---------------------------------------------------------------------------

def _tiny_loader(rng):
    from repro.data import DataLoader

    x = rng.standard_normal((32, 6)).astype(np.float32)
    y = rng.integers(0, 3, 32)
    return DataLoader(x, y, 16, shuffle=True)


class TestTrainerIntegration:
    def test_epoch_spans_reconcile_with_history(self, rng):
        from repro.core import Trainer
        from repro.nn import Linear
        from repro.optim import SGD

        model = Linear(6, 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        loader = _tiny_loader(rng)
        with obs.observe():
            trainer.fit(loader, loader, epochs=2)
        epoch_spans = obs.get_tracer().spans("epoch")
        assert len(epoch_spans) == 2
        history_secs = sum(s.seconds for s in trainer.history)
        span_secs = sum(s.duration for s in epoch_spans)
        # the span brackets exactly the region EpochStats.seconds times
        assert span_secs == pytest.approx(history_secs, rel=0.10)

    def test_epoch_stats_carry_metrics(self, rng):
        from repro.core import Trainer
        from repro.nn import Linear
        from repro.optim import SGD

        model = Linear(6, 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        loader = _tiny_loader(rng)
        with obs.observe():
            trainer.fit(loader, loader, epochs=1)
        (stats,) = trainer.history
        assert stats.metrics and stats.metrics["gemm_calls"] > 0

    def test_trainer_epoch_metrics_in_registry(self, rng):
        from repro.core import Trainer
        from repro.nn import Linear
        from repro.optim import SGD

        model = Linear(6, 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        loader = _tiny_loader(rng)
        with obs.observe():
            trainer.fit(loader, loader, epochs=2)
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["trainer.epochs"] == 2
        assert snap["histograms"]["trainer.train_loss"]["count"] == 2
        assert snap["histograms"]["trainer.val_loss"]["count"] == 2
        assert snap["gauges"]["trainer.lr"] == pytest.approx(0.1)

    def test_ddp_overlap_gauges_and_spans(self, rng):
        from repro.data import DataLoader
        from repro.distributed import ClusterSpec, DistributedTrainer
        from repro.models import MLP
        from repro.optim import SGD

        model = MLP(6, [8], 3)
        x = rng.standard_normal((32, 6)).astype(np.float32)
        y = rng.integers(0, 3, 32)
        loaders = [DataLoader(x[i::2], y[i::2], 16) for i in range(2)]
        trainer = DistributedTrainer(
            model, SGD(model.parameters(), lr=0.1), ClusterSpec(2),
            overlap=True, bucket_mb=0.0001,
        )
        with obs.observe():
            timeline = trainer.train_epoch(loaders)
        gauges = obs.get_registry().snapshot()["gauges"]
        assert 0.0 <= gauges["ddp.overlap_fraction"] <= 1.0
        assert gauges["ddp.n_buckets"] == len(trainer._buckets) > 1
        assert gauges["ddp.comm_fraction"] >= 0.0
        bucket_spans = obs.get_tracer().spans("ddp.bucket")
        assert len(bucket_spans) == len(trainer._buckets) * timeline.iterations
        assert all("nbytes" in s.attrs for s in bucket_spans)

    def test_ddp_timeline_metrics(self, rng):
        from repro.data import DataLoader
        from repro.distributed import ClusterSpec, DistributedTrainer
        from repro.models import MLP
        from repro.optim import SGD

        model = MLP(6, [8], 3)
        x = rng.standard_normal((32, 6)).astype(np.float32)
        y = rng.integers(0, 3, 32)
        loaders = [DataLoader(x[i::2], y[i::2], 16) for i in range(2)]
        trainer = DistributedTrainer(
            model, SGD(model.parameters(), lr=0.1), ClusterSpec(2)
        )
        with obs.observe():
            timeline = trainer.train_epoch(loaders)
        assert timeline.metrics.get("allreduce_calls", 0) > 0
        assert timeline.metrics.get("ddp.wire_bytes", 0) > 0
        assert "metrics" in timeline.as_dict()


class TestProfileCli:
    def test_profile_quickstart_emits_valid_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main([
            "profile", "quickstart",
            "--out", str(out),
            "--epochs", "2", "--warmup-epochs", "1",
            "--samples", "32", "--batch-size", "16", "--classes", "2",
        ])
        assert rc == 0
        with open(out) as f:
            doc = json.load(f)
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"epoch", "forward", "backward", "optimizer_step"} <= names
        assert all(ev["ph"] == "X" for ev in doc["traceEvents"])
        captured = capsys.readouterr().out
        assert "macs" in captured
        # flags are restored by the CLI's finally block
        assert not trace_mod.ENABLED and not metrics_mod.COLLECT

    def test_profile_simulate_runs(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main([
            "profile", "simulate",
            "--out", str(out),
            "--nodes", "2", "--iterations", "1", "--compressor", "topk",
        ])
        assert rc == 0
        with open(out) as f:
            doc = json.load(f)
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert "ddp.compute" in names
