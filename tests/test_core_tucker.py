"""Tucker-2 convolution decomposition (the paper's tensor-decomposition
extension)."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    TuckerConv2d,
    mode_fold,
    mode_unfold,
    tucker2_decompose,
    tucker_conv_from,
)
from repro.core.tucker import tucker2_reconstruct
from repro.tensor import Tensor


class TestModeUnfolding:
    def test_shapes(self, rng):
        t = rng.standard_normal((4, 3, 2, 2))
        assert mode_unfold(t, 0).shape == (4, 12)
        assert mode_unfold(t, 1).shape == (3, 16)

    def test_fold_roundtrip(self, rng):
        t = rng.standard_normal((4, 3, 2, 5))
        for mode in range(4):
            m = mode_unfold(t, mode)
            back = mode_fold(m, mode, t.shape)
            assert np.allclose(back, t)


class TestTucker2Decompose:
    def test_shapes(self, rng):
        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        core, a, b = tucker2_decompose(w, rank_out=4, rank_in=3)
        assert core.shape == (4, 3, 3, 3)
        assert a.shape == (8, 4)
        assert b.shape == (6, 3)

    def test_full_rank_exact(self, rng):
        w = rng.standard_normal((6, 4, 3, 3)).astype(np.float32)
        core, a, b = tucker2_decompose(w, rank_out=6, rank_in=4)
        assert np.allclose(tucker2_reconstruct(core, a, b), w, atol=1e-4)

    def test_rank_clamped(self, rng):
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        core, a, b = tucker2_decompose(w, rank_out=100, rank_in=100)
        assert a.shape[1] == 4 and b.shape[1] == 3

    def test_factors_orthonormal(self, rng):
        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        _, a, b = tucker2_decompose(w, 4, 3)
        assert np.allclose(a.T @ a, np.eye(4), atol=1e-4)
        assert np.allclose(b.T @ b, np.eye(3), atol=1e-4)

    def test_error_decreases_with_rank(self, rng):
        w = rng.standard_normal((8, 8, 3, 3)).astype(np.float32)
        errs = []
        for r in (2, 4, 8):
            core, a, b = tucker2_decompose(w, r, r)
            errs.append(np.linalg.norm(tucker2_reconstruct(core, a, b) - w))
        assert errs[0] >= errs[1] >= errs[2]

    def test_non_4d_raises(self, rng):
        with pytest.raises(ValueError):
            tucker2_decompose(rng.standard_normal((4, 4)), 2, 2)


class TestTuckerConv2d:
    def test_forward_shape(self, rng):
        conv = TuckerConv2d(6, 8, 3, rank_in=3, rank_out=4, stride=2, padding=1)
        out = conv(Tensor(rng.standard_normal((2, 6, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_param_count(self):
        c_in, c_out, k, r_in, r_out = 16, 32, 3, 4, 8
        conv = TuckerConv2d(c_in, c_out, k, rank_in=r_in, rank_out=r_out, bias=False)
        expected = c_in * r_in + r_in * r_out * k * k + r_out * c_out
        assert conv.num_parameters() == expected

    def test_smaller_than_vanilla(self):
        vanilla = nn.Conv2d(64, 64, 3, bias=False)
        tucker = TuckerConv2d(64, 64, 3, rank_in=16, rank_out=16, bias=False)
        assert tucker.num_parameters() < vanilla.num_parameters()

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            TuckerConv2d(4, 4, 3, rank_in=0, rank_out=2)

    def test_gradients_flow(self, rng):
        conv = TuckerConv2d(3, 4, 3, rank_in=2, rank_out=2, padding=1)
        out = conv(Tensor(rng.standard_normal((1, 3, 5, 5))))
        out.sum().backward()
        assert all(p.grad is not None for p in conv.parameters())


class TestTuckerWarmStart:
    def test_full_rank_functional_equivalence(self, rng):
        conv = nn.Conv2d(4, 6, 3, padding=1)
        tucker = tucker_conv_from(conv, rank_in=4, rank_out=6)
        x = Tensor(rng.standard_normal((2, 4, 6, 6)))
        assert np.allclose(conv(x).data, tucker(x).data, atol=1e-3)

    def test_effective_weight_matches_decomposition(self, rng):
        conv = nn.Conv2d(4, 6, 3)
        tucker = tucker_conv_from(conv, rank_in=2, rank_out=3)
        core, a, b = tucker2_decompose(conv.weight.data, 3, 2)
        assert np.allclose(
            tucker.effective_weight(), tucker2_reconstruct(core, a, b), atol=1e-4
        )

    def test_bias_carried(self):
        conv = nn.Conv2d(3, 5, 3, bias=True)
        tucker = tucker_conv_from(conv, 2, 2)
        assert np.allclose(tucker.conv_out.bias.data, conv.bias.data)

    def test_geometry_preserved(self):
        conv = nn.Conv2d(3, 5, 3, stride=2, padding=1)
        tucker = tucker_conv_from(conv, 2, 2)
        assert tucker.conv_core.stride == 2 and tucker.conv_core.padding == 1

    def test_approximation_competitive_with_svd(self, rng):
        """At matched parameter budgets, Tucker-2 and unrolled-SVD both give
        usable approximations (neither is degenerate)."""
        from repro.core import factorize_conv2d

        conv = nn.Conv2d(16, 16, 3, bias=False)
        w = conv.weight.data
        svd_version = factorize_conv2d(conv, rank=4)
        r = 6  # picks Tucker ranks with a similar parameter count
        tucker = tucker_conv_from(conv, rank_in=r, rank_out=r)
        err_svd = np.linalg.norm(svd_version.effective_weight() - w) / np.linalg.norm(w)
        err_tucker = np.linalg.norm(tucker.effective_weight() - w) / np.linalg.norm(w)
        assert err_svd < 1.0 and err_tucker < 1.0
