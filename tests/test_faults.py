"""Chaos suite: seeded fault injection for the distributed simulator.

Covers the fault-spec grammar, injector determinism, each fault dimension
(stragglers, link degradation, message drop/retry/backoff, worker
failure + recovery), the typed timeout error, cost-model cache behavior
under degradation, and the zero-overhead off path.
"""

import json

import numpy as np
import pytest

from repro.data import DataLoader, shard_dataset
from repro.distributed import (
    AllWorkersLostError,
    ClusterSpec,
    CollectiveTimeoutError,
    DistributedError,
    DistributedTrainer,
    DropSpec,
    FailureSpec,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    LinkSpec,
    StragglerSpec,
    allgather_time,
    allreduce_mean,
    parameter_server_time,
    parse_fault_spec,
    ring_allreduce_time,
)
from repro.distributed.cost_model import _COST_CACHE
from repro.models import MLP
from repro.observability import metrics as obs_metrics
from repro.optim import SGD
from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _fresh_cost_cache():
    """Cache-behavior assertions need a cold cost-model cache."""
    _COST_CACHE.clear()
    yield
    _COST_CACHE.clear()


@pytest.fixture
def metrics_registry():
    """Fresh registry with collection on; restores the off default."""
    obs_metrics.REGISTRY.reset()
    obs_metrics.enable_metrics()
    yield obs_metrics.REGISTRY
    obs_metrics.disable_metrics()
    obs_metrics.REGISTRY.reset()


def make_trainer(n_nodes=4, faults=None, seed=0, hidden=8, latency_s=50e-6):
    set_seed(seed)
    model = MLP(6, [hidden], 3)
    return DistributedTrainer(
        model,
        SGD(model.parameters(), lr=0.1),
        ClusterSpec(n_nodes, bandwidth_gbps=1.0, latency_s=latency_s),
        faults=faults,
    )


def make_loaders(rng, n_nodes=4, per_worker=8, batch=4):
    x = rng.standard_normal((n_nodes * per_worker, 6)).astype(np.float32)
    y = rng.integers(0, 3, n_nodes * per_worker)
    return [DataLoader(sx, sy, batch) for sx, sy in shard_dataset(x, y, n_nodes)]


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


class TestFaultSpecParsing:
    def test_compact_full_grammar(self):
        spec = parse_fault_spec(
            "seed=42,straggler=lognormal:0.2:0.5:1.5,drop=0.01:5:0.1:0.02,"
            "link=0.05:0.25:3,failure=0.002:shrink:2.0"
        )
        assert spec.seed == 42
        assert spec.straggler == StragglerSpec("lognormal", 0.2, 0.5, 1.5)
        assert spec.drop == DropSpec(0.01, 5, 0.1, 0.02)
        assert spec.link == LinkSpec(0.05, 0.25, 3)
        assert spec.failure == FailureSpec(0.002, "shrink", 2.0)

    def test_compact_partial_fields_get_defaults(self):
        spec = parse_fault_spec("drop=0.1")
        assert spec.drop.prob == 0.1
        assert spec.drop.max_retries == DropSpec().max_retries
        assert spec.straggler.kind == "none"

    def test_bare_straggler_kind_always_fires(self):
        spec = parse_fault_spec("straggler=constant")
        assert spec.straggler.prob == 1.0

    def test_inline_json(self):
        spec = parse_fault_spec(
            json.dumps({"seed": 7, "drop": {"prob": 0.5, "max_retries": 1}})
        )
        assert spec.seed == 7
        assert spec.drop == DropSpec(0.5, 1)

    def test_json_file(self, tmp_path):
        p = tmp_path / "faults.json"
        p.write_text(json.dumps({"link": {"prob": 0.3, "factor": 0.5}}))
        spec = parse_fault_spec(str(p))
        assert spec.link.prob == 0.3
        assert spec.link.factor == 0.5

    def test_unknown_key_raises(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("gremlins=0.5")

    def test_unknown_section_field_raises(self):
        with pytest.raises(FaultSpecError):
            FaultSpec.from_dict({"drop": {"probability": 0.1}})

    def test_bad_numeric_raises(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("drop=lots")

    def test_empty_spec_raises(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("  ")

    def test_roundtrip_through_dict(self):
        spec = parse_fault_spec("seed=3,straggler=heavytail:0.1:2.0,failure=0.01")
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_active_flag(self):
        assert not FaultSpec().active
        assert not parse_fault_spec("seed=5").active
        assert parse_fault_spec("drop=0.1").active
        assert parse_fault_spec("straggler=constant:0.5").active


class TestSpecValidation:
    def test_bad_straggler_kind(self):
        with pytest.raises(FaultSpecError):
            StragglerSpec(kind="uniform")

    def test_probability_ranges(self):
        with pytest.raises(FaultSpecError):
            StragglerSpec("constant", prob=1.5)
        with pytest.raises(FaultSpecError):
            DropSpec(prob=-0.1)
        with pytest.raises(FaultSpecError):
            LinkSpec(prob=2.0)
        with pytest.raises(FaultSpecError):
            FailureSpec(prob=-1.0)

    def test_link_factor_and_duration(self):
        with pytest.raises(FaultSpecError):
            LinkSpec(prob=0.1, factor=0.0)
        with pytest.raises(FaultSpecError):
            LinkSpec(prob=0.1, factor=1.5)
        with pytest.raises(FaultSpecError):
            LinkSpec(prob=0.1, duration=0)

    def test_backoff_multiplier_floor(self):
        with pytest.raises(FaultSpecError):
            DropSpec(prob=0.1, backoff_multiplier=0.5)

    def test_bad_recovery_policy(self):
        with pytest.raises(FaultSpecError):
            FailureSpec(prob=0.1, recovery="reboot")

    def test_fault_spec_error_is_distributed_and_value_error(self):
        assert issubclass(FaultSpecError, DistributedError)
        assert issubclass(FaultSpecError, ValueError)


# ---------------------------------------------------------------------------
# Injector determinism
# ---------------------------------------------------------------------------

CHAOS = FaultSpec(
    seed=11,
    straggler=StragglerSpec("lognormal", prob=0.4, scale=0.5, sigma=1.0),
    link=LinkSpec(prob=0.2, factor=0.25, duration=2),
    drop=DropSpec(prob=0.1, max_retries=6),
    failure=FailureSpec(prob=0.05, recovery="rejoin", recovery_s=0.5),
)


class TestInjectorDeterminism:
    def test_same_seed_same_draws(self):
        a, b = FaultInjector(CHAOS), FaultInjector(CHAOS)
        for it in range(20):
            for w in range(4):
                assert a.compute_multiplier(it, w) == b.compute_multiplier(it, w)
                assert a.worker_failed(it, w) == b.worker_failed(it, w)
            assert a.link_factor(it) == b.link_factor(it)
        assert a.timeline() == b.timeline()

    def test_query_order_does_not_matter(self):
        a, b = FaultInjector(CHAOS), FaultInjector(CHAOS)
        fwd = [a.compute_multiplier(it, w) for it in range(10) for w in range(4)]
        rev = [
            b.compute_multiplier(it, w)
            for it in reversed(range(10))
            for w in reversed(range(4))
        ]
        assert fwd == list(reversed(rev))

    def test_different_seed_differs(self):
        a = FaultInjector(CHAOS)
        b = FaultInjector(FaultSpec(seed=99, straggler=CHAOS.straggler,
                                    link=CHAOS.link, drop=CHAOS.drop,
                                    failure=CHAOS.failure))
        draws_a = [a.compute_multiplier(it, 0) for it in range(50)]
        draws_b = [b.compute_multiplier(it, 0) for it in range(50)]
        assert draws_a != draws_b

    def test_event_timeline_json_stable(self):
        def capture():
            inj = FaultInjector(CHAOS)
            for it in range(15):
                inj.link_factor(it)
                for w in range(4):
                    inj.compute_multiplier(it, w)
                    inj.worker_failed(it, w)
                inj.collective_penalty("allreduce", it, 6)
            return json.dumps(inj.timeline(), sort_keys=True)

        assert capture() == capture()

    def test_ops_draw_independently(self):
        inj = FaultInjector(FaultSpec(seed=0, drop=DropSpec(prob=0.5, max_retries=100)))
        pa = [inj.message_penalty("push", it, 0) for it in range(40)]
        pb = [inj.message_penalty("pull", it, 0) for it in range(40)]
        assert pa != pb  # op name is part of the RNG key


# ---------------------------------------------------------------------------
# Stragglers
# ---------------------------------------------------------------------------


class TestStragglers:
    def test_none_kind_is_identity(self):
        inj = FaultInjector(FaultSpec(seed=1))
        assert inj.compute_multiplier(0, 0) == 1.0
        assert inj.events == []

    def test_zero_prob_never_fires(self):
        inj = FaultInjector(
            FaultSpec(seed=1, straggler=StragglerSpec("constant", prob=0.0, scale=9.0))
        )
        assert all(inj.compute_multiplier(it, 0) == 1.0 for it in range(100))

    def test_constant_multiplier(self):
        inj = FaultInjector(
            FaultSpec(seed=1, straggler=StragglerSpec("constant", prob=1.0, scale=0.75))
        )
        assert inj.compute_multiplier(3, 2) == pytest.approx(1.75)

    @pytest.mark.parametrize("kind", ["lognormal", "heavytail"])
    def test_random_kinds_slow_down(self, kind):
        inj = FaultInjector(
            FaultSpec(seed=2, straggler=StragglerSpec(kind, prob=1.0, scale=1.0))
        )
        mults = [inj.compute_multiplier(it, 0) for it in range(50)]
        assert all(m > 1.0 for m in mults)
        assert len(set(mults)) > 1  # actually a distribution

    def test_heavytail_has_heavier_tail_than_lognormal(self):
        def p99(kind, sigma):
            inj = FaultInjector(
                FaultSpec(seed=3, straggler=StragglerSpec(kind, 1.0, 1.0, sigma))
            )
            xs = sorted(inj.compute_multiplier(it, 0) for it in range(400))
            return xs[int(0.99 * len(xs))]

        assert p99("heavytail", 1.0) > p99("lognormal", 1.0)

    def test_events_recorded_per_straggle(self):
        inj = FaultInjector(
            FaultSpec(seed=4, straggler=StragglerSpec("constant", prob=1.0, scale=1.0))
        )
        for it in range(5):
            inj.compute_multiplier(it, 1)
        kinds = [e.kind for e in inj.events]
        assert kinds == ["straggler"] * 5
        assert all(e.entity == 1 for e in inj.events)


# ---------------------------------------------------------------------------
# Link degradation
# ---------------------------------------------------------------------------


class TestLinkDegradation:
    def test_zero_prob_nominal(self):
        inj = FaultInjector(FaultSpec(seed=1))
        assert all(inj.link_factor(it) == 1.0 for it in range(50))

    def test_certain_episode_degrades(self):
        inj = FaultInjector(FaultSpec(seed=1, link=LinkSpec(prob=1.0, factor=0.5)))
        assert inj.link_factor(0) == 0.5

    def test_duration_extends_episode(self):
        base = FaultInjector(FaultSpec(seed=5, link=LinkSpec(prob=0.15, duration=1)))
        long = FaultInjector(FaultSpec(seed=5, link=LinkSpec(prob=0.15, duration=4)))
        n_base = sum(base.link_factor(it) < 1.0 for it in range(200))
        n_long = sum(long.link_factor(it) < 1.0 for it in range(200))
        assert n_long > n_base

    def test_memoized_single_event_per_iteration(self):
        inj = FaultInjector(FaultSpec(seed=1, link=LinkSpec(prob=1.0, factor=0.5)))
        for _ in range(5):
            inj.link_factor(7)
        assert len([e for e in inj.events if e.kind == "link"]) == 1


# ---------------------------------------------------------------------------
# Message drop / retry / backoff / timeout
# ---------------------------------------------------------------------------


class TestDropRetry:
    def test_zero_prob_zero_penalty(self):
        inj = FaultInjector(FaultSpec(seed=1))
        assert inj.message_penalty("allreduce", 0, 0) == 0.0
        assert inj.collective_penalty("allreduce", 0, 100) == 0.0

    def test_penalty_deterministic(self):
        spec = FaultSpec(seed=6, drop=DropSpec(prob=0.3, max_retries=50))
        a = [FaultInjector(spec).collective_penalty("allreduce", it, 10) for it in range(5)]
        b = [FaultInjector(spec).collective_penalty("allreduce", it, 10) for it in range(5)]
        assert a == b

    def test_backoff_grows_exponentially(self):
        # prob=1 with a huge retry budget: every attempt drops, so the
        # recorded backoffs are base * mult**attempt exactly.
        inj = FaultInjector(
            FaultSpec(
                seed=1,
                drop=DropSpec(prob=1.0, max_retries=4, timeout_s=0.0,
                              backoff_base_s=0.01, backoff_multiplier=3.0),
            )
        )
        with pytest.raises(CollectiveTimeoutError):
            inj.message_penalty("allreduce", 0, 0)
        backoffs = [e.value for e in inj.events if e.kind == "drop"]
        assert backoffs == pytest.approx([0.01 * 3.0**a for a in range(5)])

    def test_timeout_error_carries_context(self):
        inj = FaultInjector(
            FaultSpec(seed=1, drop=DropSpec(prob=1.0, max_retries=2, timeout_s=0.1))
        )
        with pytest.raises(CollectiveTimeoutError) as ei:
            inj.message_penalty("allgather", 9, 0)
        err = ei.value
        assert err.op == "allgather"
        assert err.iteration == 9
        assert err.attempts == 3
        assert err.elapsed_s > 0.3  # three timeouts + backoff

    def test_timeout_is_typed(self):
        assert issubclass(CollectiveTimeoutError, DistributedError)
        assert issubclass(CollectiveTimeoutError, TimeoutError)

    def test_timeout_event_logged_before_raise(self):
        inj = FaultInjector(FaultSpec(seed=1, drop=DropSpec(prob=1.0, max_retries=0)))
        with pytest.raises(CollectiveTimeoutError):
            inj.message_penalty("allreduce", 0, 0)
        assert [e.kind for e in inj.events] == ["drop", "timeout"]

    def test_penalty_includes_timeout_wait(self):
        # Every drop costs timeout_s + backoff; with backoff 0 the penalty
        # is exactly (number of drops) * timeout_s.
        inj = FaultInjector(
            FaultSpec(seed=8, drop=DropSpec(prob=0.5, max_retries=1000,
                                            timeout_s=1.0, backoff_base_s=0.0))
        )
        penalty = inj.collective_penalty("allreduce", 0, 50)
        drops = len([e for e in inj.events if e.kind == "drop"])
        assert penalty == pytest.approx(float(drops))
        assert drops > 0


# ---------------------------------------------------------------------------
# Collectives + parameter server under faults
# ---------------------------------------------------------------------------


class TestFaultyCollectives:
    def test_allreduce_numerics_unchanged(self, rng):
        vs = [rng.standard_normal(16).astype(np.float32) for _ in range(4)]
        inj = FaultInjector(FaultSpec(seed=1, drop=DropSpec(prob=0.3, max_retries=100)))
        assert np.array_equal(
            allreduce_mean(vs, faults=inj, iteration=0), allreduce_mean(vs)
        )

    def test_allreduce_banks_penalty(self):
        vs = [np.ones(4, dtype=np.float32)] * 4
        inj = FaultInjector(FaultSpec(seed=2, drop=DropSpec(prob=0.5, max_retries=100)))
        allreduce_mean(vs, faults=inj, iteration=0)
        assert inj.drain_penalty() > 0.0
        assert inj.drain_penalty() == 0.0  # drained

    def test_parameter_server_penalty_added(self):
        c = ClusterSpec(4)
        base = parameter_server_time(1e6, c)
        inj = FaultInjector(FaultSpec(seed=3, drop=DropSpec(prob=1.0, max_retries=100)))
        # prob=1 with a big budget would loop 100 times then raise; use a
        # seeded moderate prob instead and require a strictly larger time.
        inj = FaultInjector(FaultSpec(seed=3, drop=DropSpec(prob=0.5, max_retries=100)))
        times = [
            parameter_server_time(1e6, c, faults=inj, iteration=it) for it in range(20)
        ]
        assert max(times) > base
        assert min(times) >= base

    def test_parameter_server_timeout_raises(self):
        inj = FaultInjector(FaultSpec(seed=1, drop=DropSpec(prob=1.0, max_retries=1)))
        with pytest.raises(CollectiveTimeoutError):
            parameter_server_time(1e6, ClusterSpec(4), faults=inj)

    def test_parameter_server_degradation_scales(self):
        c = ClusterSpec(8, latency_s=0)
        assert parameter_server_time(1e6, c, degradation=0.5) == pytest.approx(
            2 * parameter_server_time(1e6, c)
        )
        with pytest.raises(ValueError):
            parameter_server_time(1e6, c, degradation=0.0)


# ---------------------------------------------------------------------------
# Cost-model cache under degradation (satellite)
# ---------------------------------------------------------------------------


class TestCostModelDegradationCache:
    def test_degradation_changes_cost(self):
        c = ClusterSpec(8, latency_s=0)
        assert ring_allreduce_time(1e6, c, 0.25) == pytest.approx(
            4 * ring_allreduce_time(1e6, c)
        )
        assert allgather_time(1e6, c, 0.5) == pytest.approx(
            2 * allgather_time(1e6, c)
        )

    def test_invalid_degradation_rejected(self):
        c = ClusterSpec(4)
        for bad in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                ring_allreduce_time(1e6, c, bad)

    def test_cache_key_includes_degradation(self, metrics_registry):
        c = ClusterSpec(8)
        ring_allreduce_time(1e6, c)  # miss
        hits0 = metrics_registry.counter("cost_model.cache_hits").value
        # Same args with a *different* degradation must not hit the cache.
        ring_allreduce_time(1e6, c, 0.5)
        assert metrics_registry.counter("cost_model.cache_hits").value == hits0
        misses = metrics_registry.counter("cost_model.cache_misses").value
        assert misses == 2

    def test_cache_hit_counter_on_repeat(self, metrics_registry):
        c = ClusterSpec(8)
        for _ in range(3):
            ring_allreduce_time(2e6, c, 0.5)
        assert metrics_registry.counter("cost_model.cache_hits").value == 2
        assert metrics_registry.counter("cost_model.cache_misses").value == 1

    def test_degraded_value_cached_correctly(self):
        c = ClusterSpec(8, latency_s=0)
        first = ring_allreduce_time(1e6, c, 0.25)
        again = ring_allreduce_time(1e6, c, 0.25)
        nominal = ring_allreduce_time(1e6, c)
        assert first == again
        assert first == pytest.approx(4 * nominal)


# ---------------------------------------------------------------------------
# Trainer integration: stragglers, failures, recovery, off path
# ---------------------------------------------------------------------------


class TestTrainerWithFaults:
    def test_inactive_spec_matches_no_faults_exactly(self, rng):
        """Zero-probability faults: identical weights and identical modeled
        comm (the off path is untouched)."""
        loaders = make_loaders(np.random.default_rng(0))
        plain = make_trainer(faults=None, seed=42)
        tl_plain = plain.train_epoch(loaders)

        loaders = make_loaders(np.random.default_rng(0))
        chaosless = make_trainer(faults=FaultSpec(seed=9), seed=42)
        tl_off = chaosless.train_epoch(loaders)

        assert tl_off.comm == pytest.approx(tl_plain.comm)
        for (n1, p1), (n2, p2) in zip(
            plain.model.named_parameters(), chaosless.model.named_parameters()
        ):
            assert np.array_equal(p1.data, p2.data), n1
        assert chaosless.faults.events == []

    def test_straggler_inflates_compute(self):
        loaders = make_loaders(np.random.default_rng(1))
        slow_spec = FaultSpec(
            seed=1, straggler=StragglerSpec("constant", prob=1.0, scale=50.0)
        )
        fast = make_trainer(faults=None, seed=7)
        tl_fast = fast.train_epoch(make_loaders(np.random.default_rng(1)))
        slow = make_trainer(faults=slow_spec, seed=7)
        tl_slow = slow.train_epoch(loaders)
        assert tl_slow.compute > 10 * tl_fast.compute

    def test_degraded_link_inflates_comm(self):
        # latency 0 so the bandwidth term (the one degradation scales) is
        # the whole comm cost: factor 0.1 must inflate comm exactly 10x.
        always_degraded = FaultSpec(seed=1, link=LinkSpec(prob=1.0, factor=0.1))
        base = make_trainer(faults=None, seed=7, latency_s=0.0)
        tl_base = base.train_epoch(make_loaders(np.random.default_rng(2)))
        degraded = make_trainer(faults=always_degraded, seed=7, latency_s=0.0)
        tl_deg = degraded.train_epoch(make_loaders(np.random.default_rng(2)))
        assert tl_deg.comm == pytest.approx(10 * tl_base.comm)

    def test_shrink_removes_workers_permanently(self):
        spec = FaultSpec(seed=13, failure=FailureSpec(prob=0.3, recovery="shrink"))
        trainer = make_trainer(faults=spec, seed=7)
        trainer.train_epoch(make_loaders(np.random.default_rng(3), per_worker=8))
        # Replay the injector's draws over the iterations actually run to
        # know exactly who must have died.
        oracle = FaultInjector(spec)
        expected = list(range(4))
        for it in range(trainer._global_iteration):
            for w in list(expected):
                if oracle.worker_failed(it, w):
                    expected.remove(w)
        assert trainer._active == expected
        assert len(expected) < 4  # the seed really kills someone

    def test_rejoin_restores_world_size(self):
        spec = FaultSpec(
            seed=21, failure=FailureSpec(prob=0.3, recovery="rejoin", recovery_s=0.25)
        )
        trainer = make_trainer(faults=spec, seed=7)
        tl = trainer.train_epoch(make_loaders(np.random.default_rng(4), per_worker=8))
        n_failures = len([e for e in trainer.faults.events if e.kind == "failure"])
        n_recoveries = len([e for e in trainer.faults.events if e.kind == "recovery"])
        assert n_failures > 0
        assert n_recoveries == n_failures
        # Every failed worker is back in (or queued to rejoin next iteration).
        assert sorted(trainer._active + trainer._rejoining) == [0, 1, 2, 3]
        # Downtime was charged: recovery_s plus a model broadcast per failure.
        assert tl.other >= n_failures * 0.25

    def test_rejoin_charges_recovery_time(self):
        spec = FaultSpec(
            seed=21, failure=FailureSpec(prob=0.3, recovery="rejoin", recovery_s=5.0)
        )
        trainer = make_trainer(faults=spec, seed=7)
        tl = trainer.train_epoch(make_loaders(np.random.default_rng(4), per_worker=8))
        recovery = [e.value for e in trainer.faults.events if e.kind == "recovery"]
        assert tl.other == pytest.approx(sum(recovery))
        assert all(r > 5.0 for r in recovery)  # downtime + broadcast

    def test_all_workers_lost_raises(self):
        spec = FaultSpec(seed=1, failure=FailureSpec(prob=1.0, recovery="shrink"))
        trainer = make_trainer(faults=spec, seed=7)
        with pytest.raises(AllWorkersLostError):
            trainer.train_epoch(make_loaders(np.random.default_rng(5)))

    def test_exhausted_retries_surface_typed_error(self):
        spec = FaultSpec(seed=1, drop=DropSpec(prob=1.0, max_retries=2))
        trainer = make_trainer(faults=spec, seed=7)
        before = [p.data.copy() for p in trainer.model.parameters()]
        with pytest.raises(CollectiveTimeoutError):
            trainer.train_epoch(make_loaders(np.random.default_rng(6)))
        # No partial update applied for the failed iteration.
        for p, b in zip(trainer.model.parameters(), before):
            assert np.array_equal(p.data, b)

    def test_timeline_faults_summary_populated(self):
        spec = FaultSpec(
            seed=11, straggler=StragglerSpec("constant", prob=1.0, scale=1.0)
        )
        trainer = make_trainer(faults=spec, seed=7)
        tl = trainer.train_epoch(make_loaders(np.random.default_rng(7)))
        assert tl.faults["events"] > 0
        assert tl.faults["by_kind"]["straggler"] > 0
        assert "faults" in tl.as_dict()

    def test_no_faults_timeline_dict_shape_unchanged(self):
        trainer = make_trainer(faults=None, seed=7)
        tl = trainer.train_epoch(make_loaders(np.random.default_rng(8)))
        assert tl.faults == {}
        assert set(tl.as_dict()) == {
            "compute", "encode", "comm", "decode", "other", "total",
        }

    def test_shrunk_ring_communicates_cheaper(self):
        # Comparing modeled comm directly: a 2-node ring is cheaper than a
        # 4-node ring for the same payload.
        spec = FaultSpec(seed=13, failure=FailureSpec(prob=0.2, recovery="shrink"))
        trainer = make_trainer(faults=spec, seed=7, latency_s=0.01)
        trainer.train_epoch(make_loaders(np.random.default_rng(9), per_worker=8))
        world = len(trainer._active)
        assert world < 4
        nbytes = trainer._model_bytes()
        assert ring_allreduce_time(nbytes, ClusterSpec(world, 1.0, 0.01)) < (
            ring_allreduce_time(nbytes, ClusterSpec(4, 1.0, 0.01))
        )


# ---------------------------------------------------------------------------
# Observability integration
# ---------------------------------------------------------------------------


class TestFaultMetrics:
    def test_injected_counter_by_kind(self, metrics_registry):
        inj = FaultInjector(
            FaultSpec(seed=4, straggler=StragglerSpec("constant", prob=1.0, scale=1.0))
        )
        for it in range(6):
            inj.compute_multiplier(it, 0)
        assert metrics_registry.counter("faults.injected").value == 6

    def test_retry_and_backoff_counters(self, metrics_registry):
        inj = FaultInjector(
            FaultSpec(seed=8, drop=DropSpec(prob=0.5, max_retries=1000,
                                            timeout_s=0.0, backoff_base_s=0.01,
                                            backoff_multiplier=1.0))
        )
        inj.collective_penalty("allreduce", 0, 50)
        retries = metrics_registry.counter("faults.retries").value
        assert retries > 0
        assert metrics_registry.counter("faults.backoff_ms").value == pytest.approx(
            retries * 10.0
        )

    def test_recovery_time_histogram(self, metrics_registry):
        spec = FaultSpec(
            seed=21, failure=FailureSpec(prob=0.3, recovery="rejoin", recovery_s=0.5)
        )
        trainer = make_trainer(faults=spec, seed=7)
        trainer.train_epoch(make_loaders(np.random.default_rng(4), per_worker=8))
        hist = metrics_registry.histogram("faults.recovery_time")
        assert hist.count == len(
            [e for e in trainer.faults.events if e.kind == "recovery"]
        )
        assert hist.sum > 0

    def test_counters_silent_when_collection_off(self):
        obs_metrics.REGISTRY.reset()
        assert not obs_metrics.COLLECT
        inj = FaultInjector(
            FaultSpec(seed=4, straggler=StragglerSpec("constant", prob=1.0, scale=1.0))
        )
        inj.compute_multiplier(0, 0)
        assert obs_metrics.REGISTRY.counters() == {}
        assert len(inj.events) == 1  # event log still records
