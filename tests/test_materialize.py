"""Materialization (hybrid -> vanilla) and the cosine LR schedule."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    FactorizationConfig,
    LowRankConv2d,
    LowRankLinear,
    LowRankLSTMLayer,
    TuckerConv2d,
    build_hybrid,
    materialize_hybrid,
    materialize_layer,
    tucker_conv_from,
)
from repro.optim import SGD, CosineAnnealingLR
from repro.tensor import Tensor


class TestMaterializeLayer:
    def test_linear_outputs_identical(self, rng):
        lr = LowRankLinear(10, 6, rank=3)
        vanilla = materialize_layer(lr)
        x = Tensor(rng.standard_normal((4, 10)))
        assert np.allclose(lr(x).data, vanilla(x).data, atol=1e-5)
        assert isinstance(vanilla, nn.Linear)

    def test_conv_outputs_identical(self, rng):
        lr = LowRankConv2d(4, 8, 3, rank=2, stride=2, padding=1)
        vanilla = materialize_layer(lr)
        x = Tensor(rng.standard_normal((2, 4, 8, 8)))
        assert np.allclose(lr(x).data, vanilla(x).data, atol=1e-4)
        assert vanilla.stride == 2 and vanilla.padding == 1

    def test_tucker_conv_outputs_identical(self, rng):
        base = nn.Conv2d(4, 6, 3, padding=1)
        tucker = tucker_conv_from(base, rank_in=2, rank_out=3)
        vanilla = materialize_layer(tucker)
        x = Tensor(rng.standard_normal((1, 4, 6, 6)))
        assert np.allclose(tucker(x).data, vanilla(x).data, atol=1e-4)

    def test_lstm_outputs_identical(self, rng):
        lr = LowRankLSTMLayer(5, 5, rank=3)
        vanilla = materialize_layer(lr)
        x = Tensor(rng.standard_normal((4, 2, 5)))
        o1, (h1, c1) = lr(x)
        o2, (h2, c2) = vanilla(x)
        assert np.allclose(o1.data, o2.data, atol=1e-4)
        assert np.allclose(c1.data, c2.data, atol=1e-4)

    def test_bias_preserved(self):
        lr = LowRankLinear(4, 3, rank=2, bias=True)
        vanilla = materialize_layer(lr)
        assert np.allclose(vanilla.bias.data, lr.bias.data)

    def test_no_bias_preserved(self):
        lr = LowRankConv2d(4, 4, 3, rank=2, bias=False)
        vanilla = materialize_layer(lr)
        assert vanilla.bias is None

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            materialize_layer(nn.ReLU())


class TestMaterializeHybrid:
    def _model(self):
        return nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1), nn.BatchNorm2d(8), nn.ReLU(),
            nn.Conv2d(8, 8, 3, padding=1), nn.ReLU(), nn.GlobalAvgPool2d(),
            nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 4),
        )

    def test_roundtrip_outputs_identical(self, rng):
        model = self._model()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.5))
        vanilla = materialize_hybrid(hybrid)
        hybrid.eval()
        vanilla.eval()
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        assert np.allclose(hybrid(x).data, vanilla(x).data, atol=1e-4)

    def test_no_lowrank_layers_remain(self):
        model = self._model()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        vanilla = materialize_hybrid(hybrid)
        for mod in vanilla.modules():
            assert not isinstance(
                mod, (LowRankLinear, LowRankConv2d, LowRankLSTMLayer, TuckerConv2d)
            )

    def test_param_count_returns_to_vanilla(self):
        model = self._model()
        hybrid, report = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        vanilla = materialize_hybrid(hybrid)
        assert vanilla.num_parameters() == report.params_before

    def test_materialized_loadable_into_original_architecture(self, rng):
        model = self._model()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        vanilla = materialize_hybrid(hybrid)
        fresh = self._model()
        fresh.load_state_dict(vanilla.state_dict())
        fresh.eval()
        vanilla.eval()
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        assert np.allclose(fresh(x).data, vanilla(x).data, atol=1e-6)

    def test_hybrid_untouched(self, rng):
        model = self._model()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        before = hybrid.state_dict()
        materialize_hybrid(hybrid)
        after = hybrid.state_dict()
        for k in before:
            assert np.array_equal(before[k], after[k])

    def test_lstm_lm_materialization(self, rng):
        from repro.models import LSTMLanguageModel, lstm_lm_hybrid_config

        lm = LSTMLanguageModel(vocab_size=30, embed_dim=12, num_layers=2, dropout=0.0)
        hybrid, _ = build_hybrid(lm, lstm_lm_hybrid_config())
        vanilla = materialize_hybrid(hybrid)
        hybrid.eval()
        vanilla.eval()
        toks = rng.integers(0, 30, (4, 2))
        o1, _ = hybrid(toks)
        o2, _ = vanilla(toks)
        assert np.allclose(o1.data, o2.data, atol=1e-3)


class TestCosineSchedule:
    def _opt(self, lr=1.0):
        from repro.nn.module import Parameter

        p = Parameter(np.zeros(1, dtype=np.float32))
        return SGD([p], lr=lr)

    def test_starts_at_base(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10)
        sched.step(0)
        assert opt.lr == pytest.approx(1.0)

    def test_half_way_is_half(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10)
        sched.step(5)
        assert opt.lr == pytest.approx(0.5)

    def test_ends_at_min(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.01)
        sched.step(10)
        assert opt.lr == pytest.approx(0.01)

    def test_monotone_decreasing(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = []
        for e in range(21):
            sched.step(e)
            lrs.append(opt.lr)
        assert lrs == sorted(lrs, reverse=True)

    def test_clamped_beyond_t_max(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=5)
        sched.step(100)
        assert opt.lr == pytest.approx(0.0)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._opt(), t_max=0)
