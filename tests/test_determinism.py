"""Reproducibility guarantees: seeded runs are bit-identical."""

import numpy as np

from repro.core import FactorizationConfig, PufferfishTrainer, Trainer, build_hybrid
from repro.data import DataLoader, make_cifar_like, make_lm_corpus, make_translation_dataset
from repro.distributed import (
    ClusterSpec,
    DistributedTrainer,
    DropSpec,
    FailureSpec,
    FaultSpec,
    LinkSpec,
    StragglerSpec,
)
from repro.models import MLP, resnet18, vgg11
from repro.optim import SGD
from repro.tensor import Tensor
from repro.utils import set_seed, spawn_rng


class TestSeededConstruction:
    def test_model_init_reproducible(self):
        set_seed(123)
        m1 = vgg11(num_classes=4, width_mult=0.125)
        set_seed(123)
        m2 = vgg11(num_classes=4, width_mult=0.125)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_different_seeds_differ(self):
        set_seed(1)
        m1 = MLP(8, [16], 4)
        set_seed(2)
        m2 = MLP(8, [16], 4)
        assert not np.allclose(
            m1.get_submodule("net.0").weight.data,
            m2.get_submodule("net.0").weight.data,
        )

    def test_spawn_rng_reproducible(self):
        set_seed(9)
        a = spawn_rng().standard_normal(5)
        set_seed(9)
        b = spawn_rng().standard_normal(5)
        assert np.array_equal(a, b)


class TestSeededData:
    def test_image_dataset(self):
        a = make_cifar_like(n=16, rng=np.random.default_rng(3))
        b = make_cifar_like(n=16, rng=np.random.default_rng(3))
        assert np.array_equal(a.images, b.images)

    def test_lm_corpus(self):
        a = make_lm_corpus(vocab_size=20, n_train=200, rng=np.random.default_rng(4))
        b = make_lm_corpus(vocab_size=20, n_train=200, rng=np.random.default_rng(4))
        assert np.array_equal(a.train, b.train)

    def test_translation(self):
        a = make_translation_dataset(n=10, rng=np.random.default_rng(5))
        b = make_translation_dataset(n=10, rng=np.random.default_rng(5))
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.tgt, b.tgt)


class TestSeededTraining:
    def _train_once(self, seed):
        set_seed(seed)
        rng = np.random.default_rng(seed)
        ds = make_cifar_like(n=64, num_classes=3, rng=rng)
        loader = DataLoader(ds.images, ds.labels, 16, shuffle=True)
        model = MLP(3 * 32 * 32, [32], 3)
        t = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9))
        t.fit(loader, loader, epochs=2)
        return model.state_dict(), [s.train_loss for s in t.history]

    def test_full_run_bit_identical(self):
        sd1, losses1 = self._train_once(7)
        sd2, losses2 = self._train_once(7)
        assert losses1 == losses2
        for k in sd1:
            assert np.array_equal(sd1[k], sd2[k])

    def test_pufferfish_run_reproducible(self):
        def run():
            set_seed(11)
            rng = np.random.default_rng(11)
            ds = make_cifar_like(n=64, num_classes=3, rng=rng)
            loader = DataLoader(ds.images, ds.labels, 16, shuffle=True)
            model = MLP(3 * 32 * 32, [32, 32], 3)
            pt = PufferfishTrainer(
                model,
                FactorizationConfig(rank_ratio=0.25),
                optimizer_factory=lambda p: SGD(p, lr=0.05, momentum=0.9),
                warmup_epochs=1,
                total_epochs=3,
            )
            hybrid = pt.fit(loader, loader)
            return hybrid.state_dict()

        sd1, sd2 = run(), run()
        for k in sd1:
            assert np.array_equal(sd1[k], sd2[k])

    def test_svd_conversion_deterministic(self):
        set_seed(21)
        model = resnet18(num_classes=4, width_mult=0.125)
        from repro.models import resnet18_hybrid_config

        h1, _ = build_hybrid(model, resnet18_hybrid_config(model))
        h2, _ = build_hybrid(model, resnet18_hybrid_config(model))
        for (n1, p1), (n2, p2) in zip(h1.named_parameters(), h2.named_parameters()):
            assert np.array_equal(p1.data, p2.data), n1


class TestFaultInjectionDeterminism:
    """Regression: a fault seed fully determines the chaos a run sees."""

    CHAOS = FaultSpec(
        seed=1234,
        straggler=StragglerSpec(kind="lognormal", prob=0.4, scale=0.5, sigma=1.0),
        link=LinkSpec(prob=0.15, factor=0.3, duration=2),
        drop=DropSpec(prob=0.05, max_retries=6, timeout_s=0.02, backoff_base_s=0.01),
        failure=FailureSpec(prob=0.05, recovery="rejoin", recovery_s=0.5),
    )

    def _train_with_faults(self, fault_seed):
        set_seed(33)
        rng = np.random.default_rng(33)
        n_nodes = 4
        loaders = []
        for _ in range(n_nodes):
            ds = make_cifar_like(n=32, num_classes=3, rng=rng)
            loaders.append(DataLoader(ds.images, ds.labels, 8, shuffle=False))
        model = MLP(3 * 32 * 32, [16], 3)
        spec = FaultSpec.from_dict({**self.CHAOS.to_dict(), "seed": fault_seed})
        trainer = DistributedTrainer(
            model,
            SGD(model.parameters(), lr=0.05),
            ClusterSpec(num_nodes=n_nodes, bandwidth_gbps=1.0, latency_s=50e-6),
            faults=spec,
        )
        timelines = [trainer.train_epoch(loaders) for _ in range(3)]
        events = [e.as_dict() for e in trainer.faults.events]
        return model.state_dict(), timelines, events

    @staticmethod
    def _modeled(timelines):
        # compute/encode/decode are wall-clock measurements; the modeled
        # (seed-determined) quantities are comm, other, and the fault log.
        keys = ("comm", "other", "faults")
        return [
            {k: t.as_dict().get(k) for k in keys} for t in timelines
        ]

    def test_same_fault_seed_identical_timeline_and_weights(self):
        sd1, tl1, ev1 = self._train_with_faults(77)
        sd2, tl2, ev2 = self._train_with_faults(77)
        assert ev1 == ev2
        assert self._modeled(tl1) == self._modeled(tl2)
        for k in sd1:
            assert np.array_equal(sd1[k], sd2[k])

    def test_different_fault_seed_different_timeline(self):
        _, tl1, ev1 = self._train_with_faults(77)
        _, tl2, ev2 = self._train_with_faults(78)
        assert ev1 != ev2 or self._modeled(tl1) != self._modeled(tl2)

    def test_faults_off_is_bit_identical_to_pre_fault_path(self):
        """faults=None must not perturb the numerics or the timeline shape."""

        def run(faults):
            set_seed(5)
            rng = np.random.default_rng(5)
            loaders = []
            for _ in range(2):
                ds = make_cifar_like(n=16, num_classes=3, rng=rng)
                loaders.append(DataLoader(ds.images, ds.labels, 8, shuffle=False))
            model = MLP(3 * 32 * 32, [8], 3)
            trainer = DistributedTrainer(
                model,
                SGD(model.parameters(), lr=0.05),
                ClusterSpec(num_nodes=2, bandwidth_gbps=1.0, latency_s=50e-6),
                faults=faults,
            )
            tl = trainer.train_epoch(loaders)
            return model.state_dict(), tl.as_dict()

        sd_off, tl_off = run(None)
        sd_inert, tl_inert = run(FaultSpec(seed=99))  # spec with no active faults
        assert "faults" not in tl_off
        # Modeled quantities match exactly; wall-clock fields (compute,
        # encode, decode) are excluded — they vary between any two runs.
        for key in ("comm", "other"):
            assert tl_off[key] == tl_inert[key]
        assert set(tl_off) == set(tl_inert)
        for k in sd_off:
            assert np.array_equal(sd_off[k], sd_inert[k])


class TestDropoutDeterminism:
    def test_dropout_draws_from_global_rng(self):
        from repro.tensor import dropout

        x = Tensor(np.ones(100))
        set_seed(5)
        from repro.utils import get_rng

        a = dropout(x, 0.5, True, get_rng()).data.copy()
        set_seed(5)
        b = dropout(x, 0.5, True, get_rng()).data.copy()
        assert np.array_equal(a, b)


class TestCompressedOverlapDeterminism:
    """The compressed-overlap DDP path (per-bucket encode riding the
    backward pass) must stay a pure function of the seed: identical
    weights across runs, and one fault timeline per seed regardless of
    which compressor — if any — is on the wire."""

    CHAOS = FaultSpec(
        seed=4242,
        straggler=StragglerSpec(kind="lognormal", prob=0.3, scale=0.4, sigma=0.8),
        link=LinkSpec(prob=0.2, factor=0.3, duration=2),
        drop=DropSpec(prob=0.05, max_retries=6, timeout_s=0.02, backoff_base_s=0.01),
        failure=FailureSpec(prob=0.03, recovery="rejoin", recovery_s=0.5),
    )

    def _run(self, compressor_name, overlap=True, faults=True):
        from repro.compression import make_compressor
        from repro.data import shard_dataset

        set_seed(17)
        rng = np.random.default_rng(17)
        nodes = 4
        model = MLP(3 * 32 * 32, [32, 16], 3)
        ds = make_cifar_like(n=nodes * 8 * 2, num_classes=3, rng=rng)
        shards = shard_dataset(ds.images, ds.labels, nodes)
        loaders = [DataLoader(x, y, 8) for x, y in shards]
        trainer = DistributedTrainer(
            model,
            SGD(model.parameters(), lr=0.05),
            ClusterSpec(nodes, bandwidth_gbps=0.3),
            compressor=make_compressor(compressor_name, nodes),
            overlap=overlap,
            bucket_mb=0.05,
            faults=FaultSpec.from_dict(self.CHAOS.to_dict()) if faults else None,
        )
        timelines = [trainer.train_epoch(loaders) for _ in range(2)]
        events = (
            [e.as_dict() for e in trainer.faults.events] if faults else []
        )
        # ``comm`` mixes the modeled wire seconds with the measured
        # backward wall-clock (exposure), so the seed-pure quantities are
        # the timeline's fault/recovery charges plus the per-bucket
        # modeled schedule recorded in overlap_events.
        modeled = [
            {k: t.as_dict().get(k) for k in ("other", "faults")}
            for t in timelines
        ]
        wire = [
            (
                ev["tail_penalty_s"],
                tuple((b["nbytes"], b["comm_s"]) for b in ev["buckets"]),
            )
            for ev in trainer.overlap_events
        ]
        return model.state_dict(), modeled, events, wire

    @staticmethod
    def _assert_state_equal(sd1, sd2):
        assert sd1.keys() == sd2.keys()
        for k in sd1:
            assert np.array_equal(sd1[k], sd2[k]), k

    def test_powersgd_overlap_run_is_pure_function_of_seed(self):
        sd1, tl1, ev1, wire1 = self._run("powersgd")
        sd2, tl2, ev2, wire2 = self._run("powersgd")
        self._assert_state_equal(sd1, sd2)
        assert tl1 == tl2
        assert ev1 == ev2
        assert wire1 == wire2

    def test_protocol_compressors_reproduce_too(self):
        for name in ("abtrain", "vargate"):
            sd1, tl1, ev1, wire1 = self._run(name)
            sd2, tl2, ev2, wire2 = self._run(name)
            self._assert_state_equal(sd1, sd2)
            assert tl1 == tl2
            assert ev1 == ev2
            assert wire1 == wire2

    def test_fault_timeline_identical_with_and_without_compression(self):
        """Compression must not consume extra fault-RNG draws: a fixed
        seed yields the same event stream (kind, iteration, entity) for
        the uncompressed and every compressed overlap run."""

        def identity(events):
            return [
                (e["kind"], e.get("iteration"), e.get("worker"), e.get("link"))
                for e in events
            ]

        _, _, base, _ = self._run("sgd")
        for name in ("powersgd", "abtrain", "vargate"):
            _, _, ev, _ = self._run(name)
            assert identity(ev) == identity(base), name
