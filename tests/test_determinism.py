"""Reproducibility guarantees: seeded runs are bit-identical."""

import numpy as np

from repro.core import FactorizationConfig, PufferfishTrainer, Trainer, build_hybrid
from repro.data import DataLoader, make_cifar_like, make_lm_corpus, make_translation_dataset
from repro.models import MLP, resnet18, vgg11
from repro.optim import SGD
from repro.tensor import Tensor
from repro.utils import set_seed, spawn_rng


class TestSeededConstruction:
    def test_model_init_reproducible(self):
        set_seed(123)
        m1 = vgg11(num_classes=4, width_mult=0.125)
        set_seed(123)
        m2 = vgg11(num_classes=4, width_mult=0.125)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_different_seeds_differ(self):
        set_seed(1)
        m1 = MLP(8, [16], 4)
        set_seed(2)
        m2 = MLP(8, [16], 4)
        assert not np.allclose(
            m1.get_submodule("net.0").weight.data,
            m2.get_submodule("net.0").weight.data,
        )

    def test_spawn_rng_reproducible(self):
        set_seed(9)
        a = spawn_rng().standard_normal(5)
        set_seed(9)
        b = spawn_rng().standard_normal(5)
        assert np.array_equal(a, b)


class TestSeededData:
    def test_image_dataset(self):
        a = make_cifar_like(n=16, rng=np.random.default_rng(3))
        b = make_cifar_like(n=16, rng=np.random.default_rng(3))
        assert np.array_equal(a.images, b.images)

    def test_lm_corpus(self):
        a = make_lm_corpus(vocab_size=20, n_train=200, rng=np.random.default_rng(4))
        b = make_lm_corpus(vocab_size=20, n_train=200, rng=np.random.default_rng(4))
        assert np.array_equal(a.train, b.train)

    def test_translation(self):
        a = make_translation_dataset(n=10, rng=np.random.default_rng(5))
        b = make_translation_dataset(n=10, rng=np.random.default_rng(5))
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.tgt, b.tgt)


class TestSeededTraining:
    def _train_once(self, seed):
        set_seed(seed)
        rng = np.random.default_rng(seed)
        ds = make_cifar_like(n=64, num_classes=3, rng=rng)
        loader = DataLoader(ds.images, ds.labels, 16, shuffle=True)
        model = MLP(3 * 32 * 32, [32], 3)
        t = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9))
        t.fit(loader, loader, epochs=2)
        return model.state_dict(), [s.train_loss for s in t.history]

    def test_full_run_bit_identical(self):
        sd1, losses1 = self._train_once(7)
        sd2, losses2 = self._train_once(7)
        assert losses1 == losses2
        for k in sd1:
            assert np.array_equal(sd1[k], sd2[k])

    def test_pufferfish_run_reproducible(self):
        def run():
            set_seed(11)
            rng = np.random.default_rng(11)
            ds = make_cifar_like(n=64, num_classes=3, rng=rng)
            loader = DataLoader(ds.images, ds.labels, 16, shuffle=True)
            model = MLP(3 * 32 * 32, [32, 32], 3)
            pt = PufferfishTrainer(
                model,
                FactorizationConfig(rank_ratio=0.25),
                optimizer_factory=lambda p: SGD(p, lr=0.05, momentum=0.9),
                warmup_epochs=1,
                total_epochs=3,
            )
            hybrid = pt.fit(loader, loader)
            return hybrid.state_dict()

        sd1, sd2 = run(), run()
        for k in sd1:
            assert np.array_equal(sd1[k], sd2[k])

    def test_svd_conversion_deterministic(self):
        set_seed(21)
        model = resnet18(num_classes=4, width_mult=0.125)
        from repro.models import resnet18_hybrid_config

        h1, _ = build_hybrid(model, resnet18_hybrid_config(model))
        h2, _ = build_hybrid(model, resnet18_hybrid_config(model))
        for (n1, p1), (n2, p2) in zip(h1.named_parameters(), h2.named_parameters()):
            assert np.array_equal(p1.data, p2.data), n1


class TestDropoutDeterminism:
    def test_dropout_draws_from_global_rng(self):
        from repro.tensor import dropout

        x = Tensor(np.ones(100))
        set_seed(5)
        from repro.utils import get_rng

        a = dropout(x, 0.5, True, get_rng()).data.copy()
        set_seed(5)
        b = dropout(x, 0.5, True, get_rng()).data.copy()
        assert np.array_equal(a, b)
