"""Property-based tests for the gradient-compressor contract.

Every compressor in the registry is held to the published contract in
``repro.compression.base`` (see also docs/COMPRESSION.md):

* ``decode_aggregate(encode x W)`` matches the exact gradient mean within
  the compressor's published ``agg_contract`` / ``agg_tolerance`` regime;
* the claimed wire size ``EncodeResult.nbytes`` is at least the byte
  count of the wire-essential payload (``min_payload_nbytes``);
* error-feedback residuals stay bounded over many steps (no silent
  divergence of the EF memory);
* allreduce-compatible compressors commute with bucket tiling: encoding
  bucket-by-bucket with ``layer_offset`` is bit-identical to encoding the
  whole gradient at once — the invariant the compressed-overlap DDP path
  relies on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import make_compressor, registered_compressors

ALL_NAMES = sorted(registered_compressors())
ARC_NAMES = sorted(
    name for name, cls in registered_compressors().items() if cls.allreduce_compatible
)

SEED = st.integers(0, 2**31 - 1)
WORLD = st.integers(1, 5)

# The "dense" contract regime: the compressor configured to keep every
# coordinate (base.Compressor docstring names these configurations).
DENSE_CONFIG = {
    "topk": {"ratio": 1.0},
    "vargate": {"threshold": math.inf},
}


def make_grads(rng, n=6, m=7, vec=5):
    """One matrix layer + one vector layer (biases exercise raw paths)."""
    return [
        rng.standard_normal((n, m)).astype(np.float32),
        rng.standard_normal(vec).astype(np.float32),
    ]


def make_low_rank_grads(rng, world, rank=2, n=8, m=9, vec=5):
    """Per-worker gradients whose matrix layers share a rank-``rank``
    column space (so the mean is also rank <= ``rank``)."""
    basis = rng.standard_normal((n, rank)).astype(np.float32)
    out = []
    for _ in range(world):
        coeff = rng.standard_normal((rank, m)).astype(np.float32)
        out.append(
            [
                (basis @ coeff).astype(np.float32),
                rng.standard_normal(vec).astype(np.float32),
            ]
        )
    return out


def exact_mean(per_worker):
    n_layers = len(per_worker[0])
    out = []
    for i in range(n_layers):
        acc = np.zeros_like(per_worker[0][i], dtype=np.float64)
        for grads in per_worker:
            acc += grads[i]
        out.append((acc / len(per_worker)).astype(np.float32))
    return out


def rel_err(got, want):
    num = math.sqrt(
        sum(float(np.sum((g.astype(np.float64) - w.astype(np.float64)) ** 2))
            for g, w in zip(got, want))
    )
    den = math.sqrt(sum(float(np.sum(w.astype(np.float64) ** 2)) for w in want))
    return num / max(den, 1e-12)


class TestAggregationContract:
    """decode_aggregate(encode x W) ~= mean, per published contract."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    @given(seed=SEED, world=WORLD)
    @settings(max_examples=15, deadline=None)
    def test_contract_holds(self, name, seed, world):
        cls = registered_compressors()[name]
        rng = np.random.default_rng(seed)
        if cls.agg_contract == "unbiased":
            self._check_unbiased(name, cls, rng)
            return
        comp = make_compressor(name, world, **DENSE_CONFIG.get(name, {}))
        if cls.agg_contract == "low_rank":
            per_worker = make_low_rank_grads(rng, world)
        else:
            per_worker = [make_grads(rng) for _ in range(world)]
        results = [comp.encode(w, per_worker[w]) for w in range(world)]
        decoded = comp.decode_aggregate(results)
        mean = exact_mean(per_worker)
        if cls.agg_contract in ("exact", "dense", "low_rank"):
            assert rel_err(decoded, mean) <= cls.agg_tolerance
        elif cls.agg_contract == "sign":
            # Only coordinate signs of the (momentum) mean are recovered;
            # with fresh momentum the sign equals the gradient sign where
            # every worker agrees.
            for d, m_layer, stack in zip(
                decoded, mean, zip(*per_worker)
            ):
                assert set(np.unique(d)) <= {-1.0, 0.0, 1.0}
                signs = np.stack([np.sign(g) for g in stack])
                unanimous = np.all(signs == signs[0], axis=0) & (signs[0] != 0)
                assert np.array_equal(d[unanimous], signs[0][unanimous])
        else:  # pragma: no cover - new contract names need a branch here
            pytest.fail(f"unknown agg_contract {cls.agg_contract!r}")

    @staticmethod
    def _check_unbiased(name, cls, rng, trials=300):
        # E[decode] = mean: average many independent stochastic encodings
        # of the same single-worker gradient.
        grads = make_grads(rng)
        acc = None
        for _ in range(trials):
            comp = make_compressor(name, 1)
            decoded = comp.decode_aggregate([comp.encode(0, grads)])
            if acc is None:
                acc = [d.astype(np.float64) for d in decoded]
            else:
                for a, d in zip(acc, decoded):
                    a += d
        averaged = [(a / trials).astype(np.float32) for a in acc]
        assert rel_err(averaged, grads) <= cls.agg_tolerance


class TestByteHonesty:
    """The claimed wire size never undercounts the encoded payload."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    @given(seed=SEED, world=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_nbytes_at_least_min_payload(self, name, seed, world):
        comp = make_compressor(name, world)
        rng = np.random.default_rng(seed)
        # Several steps so schedule-dependent modes (AB-Training's a/b
        # phases, variance gating's deferrals) all hit the assertion.
        for _ in range(4):
            per_worker = [make_grads(rng) for _ in range(world)]
            results = [comp.encode(w, per_worker[w]) for w in range(world)]
            for res in results:
                assert res.nbytes >= comp.min_payload_nbytes(res)
                assert res.nbytes >= 0
            comp.decode_aggregate(results)
            comp.advance_step()


class TestErrorFeedbackBounded:
    """Residual memory stays bounded over 50 steps of unit gradients."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    @given(seed=SEED)
    @settings(max_examples=5, deadline=None)
    def test_error_norm_bounded(self, name, seed):
        world = 3
        comp = make_compressor(name, world)
        rng = np.random.default_rng(seed)
        bound = 0.0
        for _ in range(50):
            per_worker = []
            norm = 0.0
            for w in range(world):
                grads = make_grads(rng)
                norm = max(
                    norm,
                    math.sqrt(sum(float(np.sum(g.astype(np.float64) ** 2))
                                  for g in grads)),
                )
                per_worker.append(grads)
            comp.decode_aggregate(
                [comp.encode(w, per_worker[w]) for w in range(world)]
            )
            comp.advance_step()
            bound = max(bound, norm)
        for w in range(world):
            e = comp.error_norm(w)
            assert math.isfinite(e)
            # Generous: catches divergence, not the per-scheme constant.
            assert e <= 30.0 * bound


class TestBucketTilingCommutes:
    """Per-bucket encoding with layer_offset == whole-gradient encoding,
    bit for bit — the compressed-overlap invariant."""

    @pytest.mark.parametrize("name", ARC_NAMES)
    @given(seed=SEED, world=st.integers(1, 4), split=st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_tiled_equals_whole(self, name, seed, world, split):
        whole = make_compressor(name, world)
        tiled = make_compressor(name, world)
        rng = np.random.default_rng(seed)
        for _ in range(4):
            per_worker = [
                [
                    rng.standard_normal((5, 6)).astype(np.float32),
                    rng.standard_normal(4).astype(np.float32),
                    rng.standard_normal((3, 7)).astype(np.float32),
                    rng.standard_normal((6, 2)).astype(np.float32),
                ]
                for _ in range(world)
            ]
            n_layers = len(per_worker[0])

            whole_out = whole.decode_aggregate(
                [whole.encode(w, per_worker[w]) for w in range(world)]
            )

            tiled_out = []
            start = 0
            while start < n_layers:
                stop = min(n_layers, start + split)
                results = [
                    tiled.encode(w, per_worker[w][start:stop], layer_offset=start)
                    for w in range(world)
                ]
                tiled_out.extend(tiled.decode_aggregate(results))
                start = stop

            for a, b in zip(whole_out, tiled_out):
                np.testing.assert_array_equal(a, b)
            for w in range(world):
                assert whole.error_norm(w) == tiled.error_norm(w)
            whole.advance_step()
            tiled.advance_step()
