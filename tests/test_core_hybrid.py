"""Hybrid-network construction: K index, skip rules, overrides, weight and
buffer transfer (the Algorithm 1 conversion step)."""

import numpy as np

from repro import nn
from repro.core import (
    FactorizationConfig,
    LowRankConv2d,
    LowRankLinear,
    build_hybrid,
    factorizable_leaves,
)
from repro.tensor import Tensor


def small_cnn(num_classes=5):
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.Conv2d(8, 16, 3, padding=1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 16, 3, padding=1),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(16, 32),
        nn.ReLU(),
        nn.Linear(32, num_classes),
    )


class TestFactorizableLeaves:
    def test_enumerates_in_order(self):
        leaves = factorizable_leaves(small_cnn())
        paths = [p for p, _ in leaves]
        assert paths == ["0", "3", "6", "9", "11"]

    def test_counts_lstm(self):
        from repro.models import LSTMLanguageModel

        lm = LSTMLanguageModel(vocab_size=30, embed_dim=8, num_layers=2, dropout=0.0)
        leaves = factorizable_leaves(lm)
        assert len(leaves) == 2  # two LSTMLayer leaves; embedding excluded


class TestBuildHybrid:
    def test_original_model_untouched(self, rng):
        model = small_cnn()
        before = model.state_dict()
        build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        after = model.state_dict()
        for k in before:
            assert np.allclose(before[k], after[k])

    def test_first_conv_and_last_fc_kept(self):
        model = small_cnn()
        hybrid, report = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        assert "0" in report.kept and "11" in report.kept
        assert isinstance(hybrid.get_submodule("0"), nn.Conv2d)
        assert isinstance(hybrid.get_submodule("11"), nn.Linear)

    def test_middle_layers_replaced(self):
        model = small_cnn()
        hybrid, report = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        assert isinstance(hybrid.get_submodule("3"), LowRankConv2d)
        assert isinstance(hybrid.get_submodule("9"), LowRankLinear)

    def test_k_index_keeps_early_layers(self):
        model = small_cnn()
        cfg = FactorizationConfig(rank_ratio=0.25, first_lowrank_index=3)
        hybrid, report = build_hybrid(model, cfg)
        # leaves 0,1,2 kept -> convs "0","3","6" stay vanilla
        assert isinstance(hybrid.get_submodule("3"), nn.Conv2d)
        assert isinstance(hybrid.get_submodule("6"), nn.Conv2d)
        assert isinstance(hybrid.get_submodule("9"), LowRankLinear)

    def test_huge_k_leaves_model_unchanged(self):
        model = small_cnn()
        cfg = FactorizationConfig(first_lowrank_index=100)
        hybrid, report = build_hybrid(model, cfg)
        assert report.replaced == []
        assert report.params_after == report.params_before

    def test_full_rank_prefixes(self):
        model = small_cnn()
        cfg = FactorizationConfig(rank_ratio=0.25, full_rank_prefixes=("9",))
        hybrid, _ = build_hybrid(model, cfg)
        assert isinstance(hybrid.get_submodule("9"), nn.Linear)

    def test_rank_overrides(self):
        model = small_cnn()
        cfg = FactorizationConfig(rank_ratio=0.25, rank_overrides={"3": 2})
        hybrid, report = build_hybrid(model, cfg)
        assert hybrid.get_submodule("3").rank == 2
        assert dict(report.replaced)["3"] == 2

    def test_compression_reported(self):
        model = small_cnn()
        _, report = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        assert report.compression > 1.0
        assert report.params_after < report.params_before
        assert report.svd_seconds >= 0

    def test_disable_skip_rules(self):
        model = small_cnn()
        cfg = FactorizationConfig(
            rank_ratio=0.5, skip_first_conv=False, skip_last_fc=False
        )
        hybrid, report = build_hybrid(model, cfg)
        assert report.kept == []
        assert isinstance(hybrid.get_submodule("0"), LowRankConv2d)


class TestWeightTransfer:
    def test_bn_buffers_carried(self, rng):
        model = small_cnn()
        # populate BN running stats
        model.train()
        for _ in range(5):
            model(Tensor(rng.standard_normal((8, 3, 8, 8))))
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        bn_src = model.get_submodule("1")
        bn_dst = hybrid.get_submodule("1")
        assert np.allclose(bn_src.running_mean, bn_dst.running_mean)
        assert np.allclose(bn_src.running_var, bn_dst.running_var)

    def test_kept_layer_weights_identical(self):
        model = small_cnn()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        assert np.allclose(
            model.get_submodule("0").weight.data, hybrid.get_submodule("0").weight.data
        )

    def test_outputs_close_at_high_rank_ratio(self, rng):
        model = small_cnn()
        model.eval()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=1.0))
        hybrid.eval()
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        assert np.allclose(model(x).data, hybrid(x).data, atol=1e-3)

    def test_approximation_improves_with_ratio(self, rng):
        model = small_cnn()
        model.eval()
        x = Tensor(rng.standard_normal((4, 3, 8, 8)))
        ref = model(x).data
        errs = []
        for ratio in (0.1, 0.5, 1.0):
            hyb, _ = build_hybrid(model, FactorizationConfig(rank_ratio=ratio))
            hyb.eval()
            errs.append(np.abs(hyb(x).data - ref).max())
        assert errs[0] >= errs[1] >= errs[2]

    def test_hybrid_is_independent_copy(self, rng):
        model = small_cnn()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        hybrid.get_submodule("0").weight.data[:] = 0
        assert not np.allclose(model.get_submodule("0").weight.data, 0)

    def test_hybrid_trains(self, rng):
        from repro.optim import SGD

        model = small_cnn(num_classes=3)
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        opt = SGD(hybrid.parameters(), lr=0.01)
        x = Tensor(rng.standard_normal((4, 3, 8, 8)))
        y = rng.integers(0, 3, 4)
        loss_fn = nn.CrossEntropyLoss()
        l0 = loss_fn(hybrid(x), y)
        l0.backward()
        opt.step()
        l1 = loss_fn(hybrid(x), y)
        assert l1.item() < l0.item() + 1e-3


class TestModelSpecificConfigs:
    def test_transformer_first_blocks_full_rank(self):
        from repro.models import Seq2SeqTransformer, transformer_hybrid_config

        tr = Seq2SeqTransformer(vocab_size=40, d_model=16, n_heads=2, num_layers=2, max_len=16)
        hybrid, report = build_hybrid(tr, transformer_hybrid_config())
        kept_paths = set(report.kept)
        assert any(p.startswith("encoder_layers.0") for p in kept_paths)
        assert any(p.startswith("decoder_layers.0") for p in kept_paths)
        replaced_paths = [p for p, _ in report.replaced]
        assert any(p.startswith("encoder_layers.1") for p in replaced_paths)

    def test_resnet18_downsamples_kept(self):
        from repro.models import resnet18, resnet18_hybrid_config

        model = resnet18(num_classes=10, width_mult=0.25)
        hybrid, report = build_hybrid(model, resnet18_hybrid_config(model))
        for path in report.kept:
            sub = hybrid.get_submodule(path)
            assert not isinstance(sub, (LowRankConv2d, LowRankLinear))
        assert all("downsample" not in p for p, _ in report.replaced)

    def test_resnet50_only_layer4_replaced(self):
        from repro.models import resnet50, resnet50_hybrid_config

        model = resnet50(num_classes=10, width_mult=0.125, small_input=True)
        _, report = build_hybrid(model, resnet50_hybrid_config(model))
        assert report.replaced, "layer4 should be factorized"
        assert all(p.startswith("layer4") for p, _ in report.replaced)
