"""Model zoo: forward shapes, paper parameter counts, hybrid configurations."""

import numpy as np
import pytest

from repro.core import build_hybrid
from repro.models import (
    MLP,
    LSTMLanguageModel,
    Seq2SeqTransformer,
    lstm_lm_hybrid_config,
    mlp_hybrid_config,
    resnet18,
    resnet18_hybrid_config,
    resnet50,
    resnet50_hybrid_config,
    transformer_hybrid_config,
    vgg11,
    vgg19,
    vgg19_hybrid_config,
    wide_resnet50_2,
)
from repro.tensor import Tensor


class TestVGG:
    def test_paper_param_count_exact(self):
        # Table 4: vanilla VGG-19 on CIFAR-10 has 20,560,330 parameters.
        assert vgg19(num_classes=10).num_parameters() == 20_560_330

    def test_pufferfish_param_count_exact(self):
        # Table 4: Pufferfish VGG-19 has 8,370,634 parameters.
        _, report = build_hybrid(vgg19(num_classes=10), vgg19_hybrid_config())
        assert report.params_after == 8_370_634

    def test_forward_shape(self, rng):
        v = vgg11(num_classes=7, width_mult=0.25)
        out = v(Tensor(rng.standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 7)

    def test_width_mult_scales_params(self):
        assert vgg11(width_mult=0.25).num_parameters() < vgg11(width_mult=0.5).num_parameters()

    def test_invalid_depth_raises(self):
        from repro.models.vgg import VGG

        with pytest.raises(ValueError):
            VGG(13)

    def test_invalid_input_size_raises(self):
        from repro.models.vgg import VGG

        with pytest.raises(ValueError):
            VGG(11, in_size=30)

    def test_hybrid_forward(self, rng):
        v = vgg19(num_classes=5, width_mult=0.25)
        hybrid, _ = build_hybrid(v, vgg19_hybrid_config())
        out = hybrid(Tensor(rng.standard_normal((1, 3, 32, 32))))
        assert out.shape == (1, 5)


class TestResNet:
    def test_paper_param_count_close(self):
        # Table 4 reports 11,173,834; our CIFAR ResNet-18 is within 128
        # parameters (one BN pair) of the reference implementation.
        n = resnet18(num_classes=10).num_parameters()
        assert abs(n - 11_173_834) <= 128

    def test_pufferfish_param_count_close(self):
        model = resnet18(num_classes=10)
        _, report = build_hybrid(model, resnet18_hybrid_config(model))
        assert abs(report.params_after - 3_336_138) <= 128

    def test_compression_ratio_matches_paper(self):
        # Paper: Pufferfish ResNet-18 is 3.35x smaller.
        model = resnet18(num_classes=10)
        _, report = build_hybrid(model, resnet18_hybrid_config(model))
        assert report.compression == pytest.approx(3.35, abs=0.05)

    def test_resnet50_compression_matches_paper(self):
        # Paper limitation section: only 1.68x for ResNet-50.
        model = resnet50(num_classes=100, width_mult=0.25, small_input=True)
        _, report = build_hybrid(model, resnet50_hybrid_config(model))
        assert report.compression == pytest.approx(1.68, abs=0.15)

    def test_forward_small_input(self, rng):
        r = resnet18(num_classes=4, width_mult=0.125)
        assert r(Tensor(rng.standard_normal((2, 3, 32, 32)))).shape == (2, 4)

    def test_forward_imagenet_stem(self, rng):
        r = resnet50(num_classes=6, width_mult=0.125, small_input=False)
        assert r(Tensor(rng.standard_normal((1, 3, 64, 64)))).shape == (1, 6)

    def test_wide_resnet_is_wider(self):
        r = resnet50(num_classes=10, width_mult=0.25)
        w = wide_resnet50_2(num_classes=10, width_mult=0.25)
        assert w.num_parameters() > r.num_parameters()

    def test_full_size_resnet50_param_count(self):
        # Table 7: vanilla ResNet-50 on ImageNet has 25,610,205 params
        # (with the fc bias and 1000 classes: 25.56M weights + BN).
        n = resnet50(num_classes=1000).num_parameters()
        assert n == pytest.approx(25_610_205, rel=0.003)

    def test_hybrid_resnet18_trains(self, rng):
        from repro import nn
        from repro.optim import SGD

        model = resnet18(num_classes=3, width_mult=0.125)
        hybrid, _ = build_hybrid(model, resnet18_hybrid_config(model))
        opt = SGD(hybrid.parameters(), lr=0.01, momentum=0.9)
        x = Tensor(rng.standard_normal((4, 3, 16, 16)))
        y = rng.integers(0, 3, 4)
        loss = nn.CrossEntropyLoss()(hybrid(x), y)
        loss.backward()
        opt.step()
        assert all(p.grad is not None for p in hybrid.parameters())


class TestLSTMLanguageModel:
    def test_forward_shape(self, rng):
        lm = LSTMLanguageModel(vocab_size=50, embed_dim=16, num_layers=2, dropout=0.0)
        tokens = rng.integers(0, 50, (5, 3))
        logits, states = lm(tokens)
        assert logits.shape == (5, 3, 50)
        assert len(states) == 2

    def test_weight_tying_requires_equal_dims(self):
        with pytest.raises(ValueError):
            LSTMLanguageModel(vocab_size=10, embed_dim=8, hidden_size=16)

    def test_decoder_shares_embedding(self, rng):
        lm = LSTMLanguageModel(vocab_size=30, embed_dim=8, dropout=0.0)
        # There is exactly one (vocab, dim) weight: the tied embedding.
        big = [p for p in lm.parameters() if p.data.shape == (30, 8)]
        assert len(big) == 1

    def test_paper_scale_param_count(self):
        # Table 2: vanilla 2-layer LSTM on WikiText-2 = 85,962,278 params
        # (vocab 33278, dim 1500).  Our count is 85,974,278 — exactly one
        # layer's bias pair (8×1500 = 12,000) above the paper's figure, so
        # the paper appears to omit one bias set; the offset is identical
        # for the factorized model and cancels in the compression ratio.
        lm = LSTMLanguageModel(vocab_size=33278, embed_dim=1500, num_layers=2)
        assert lm.num_parameters() == 85_962_278 + 12_000

    def test_paper_scale_factorized_count(self):
        # Table 2: Pufferfish LSTM = 67,962,278 params (rank 375 = 1500/4).
        # Computed analytically (a 1500-dim float64 SVD is too slow for a
        # unit test): embedding + 2 low-rank layers + biases + decoder bias.
        from repro.metrics import lowrank_lstm_params

        per_layer = lowrank_lstm_params(1500, 1500, 375) + 8 * 1500
        total = 33278 * 1500 + 2 * per_layer + 33278
        assert total == 67_962_278 + 12_000

    def test_factorized_count_via_build_hybrid_small(self):
        # The same arithmetic holds through the real conversion path at a
        # size where the SVD is fast.
        from repro.metrics import lowrank_lstm_params

        lm = LSTMLanguageModel(vocab_size=200, embed_dim=64, num_layers=2, dropout=0.0)
        _, report = build_hybrid(lm, lstm_lm_hybrid_config())
        expected = 200 * 64 + 2 * (lowrank_lstm_params(64, 64, 16) + 8 * 64) + 200
        assert report.params_after == expected

    def test_detach_states(self, rng):
        lm = LSTMLanguageModel(vocab_size=20, embed_dim=8, dropout=0.0)
        _, states = lm(rng.integers(0, 20, (3, 2)))
        detached = lm.detach_states(states)
        assert all(not h.requires_grad and not c.requires_grad for h, c in detached)


class TestTransformer:
    def test_forward_shape(self, rng):
        tr = Seq2SeqTransformer(vocab_size=40, d_model=16, n_heads=2, num_layers=2, max_len=16)
        src = rng.integers(3, 40, (2, 6))
        tgt = rng.integers(3, 40, (2, 5))
        assert tr(src, tgt).shape == (2, 5, 40)

    def test_paper_scale_param_count(self):
        # Table 3: vanilla 6-layer Transformer = 48,978,432 params
        # (vocab 9521, d_model 512, shared embeddings, tied generator).
        tr = Seq2SeqTransformer(vocab_size=9521, d_model=512, n_heads=8, num_layers=6, max_len=64)
        assert tr.num_parameters() == pytest.approx(48_978_432, rel=0.01)

    def test_paper_scale_factorized_count(self):
        # Table 3: Pufferfish Transformer = 26,696,192 params.
        tr = Seq2SeqTransformer(vocab_size=9521, d_model=512, n_heads=8, num_layers=6, max_len=64)
        _, report = build_hybrid(tr, transformer_hybrid_config())
        assert report.params_after == pytest.approx(26_696_192, rel=0.01)

    def test_greedy_decode_terminates(self, rng):
        tr = Seq2SeqTransformer(vocab_size=20, d_model=8, n_heads=2, num_layers=1, max_len=16)
        src = rng.integers(3, 20, (2, 5))
        ys = tr.greedy_decode(src, bos=1, eos=2, max_len=8)
        assert ys.shape[0] == 2 and ys.shape[1] <= 8
        assert np.all(ys[:, 0] == 1)

    def test_pad_tokens_do_not_affect_output(self, rng):
        tr = Seq2SeqTransformer(vocab_size=20, d_model=8, n_heads=2, num_layers=1, max_len=16)
        tr.eval()
        src1 = np.array([[5, 6, 7, 0, 0]])
        src2 = np.array([[5, 6, 7, 0, 0]])
        tgt = np.array([[1, 8, 9]])
        out1 = tr(src1, tgt).data
        out2 = tr(src2, tgt).data
        assert np.allclose(out1, out2, atol=1e-5)


class TestMLP:
    def test_forward_flattens(self, rng):
        m = MLP(48, [32], 5)
        assert m(Tensor(rng.standard_normal((2, 3, 4, 4)))).shape == (2, 5)

    def test_hybrid_config_spares_head(self):
        m = MLP(20, [64, 64], 4)
        hybrid, report = build_hybrid(m, mlp_hybrid_config(0.25))
        from repro import nn

        leaves = [p for p, _ in report.replaced]
        assert "net.4" not in leaves  # classifier head kept
        assert isinstance(hybrid.get_submodule("net.4"), nn.Linear)
