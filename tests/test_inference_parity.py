"""Hybrid (factorized) models in eval mode: batch-size invariance and
bit-determinism.

Serving batches requests dynamically, so the same request may ride a
batch of 1, 7 or 32 depending on load — its logits must not depend on
who it shared the batch with.  Eval mode guarantees this (BatchNorm uses
running stats, Dropout is identity); these tests pin it for the
factorized variants the serving layer actually deploys.
"""

import numpy as np
import pytest

from repro.serve import default_registry
from repro.tensor import Tensor, no_grad
from repro.utils import set_seed

BATCH_SIZES = (1, 7, 32)


@pytest.fixture(scope="module")
def served():
    registry = default_registry()
    return {
        name: registry.materialize(name, "factorized", width=0.125)
        for name in ("mlp", "vgg11")
    }


def _forward(model, x):
    with no_grad():
        return model(Tensor(x)).data


@pytest.mark.parametrize("name", ["mlp", "vgg11"])
def test_eval_outputs_batch_size_invariant(served, name):
    """Logits for one example are identical whether it is served alone or
    inside a larger batch (up to BLAS blocking noise)."""
    model = served[name].model
    model.eval()
    rng = np.random.default_rng(11)
    x = rng.standard_normal((max(BATCH_SIZES), *served[name].input_shape)).astype(
        np.float32
    )
    reference = _forward(model, x)
    for bs in BATCH_SIZES:
        out = _forward(model, x[:bs])
        np.testing.assert_allclose(
            out, reference[:bs], rtol=1e-4, atol=1e-5,
            err_msg=f"{name}: batch={bs} diverges from batch={max(BATCH_SIZES)}",
        )


@pytest.mark.parametrize("name", ["mlp", "vgg11"])
def test_eval_outputs_bit_deterministic(served, name):
    """Repeating the same eval forward is bit-identical — the property the
    serving timeline digests (and the latency profiles) lean on."""
    model = served[name].model
    model.eval()
    rng = np.random.default_rng(12)
    for bs in BATCH_SIZES:
        x = rng.standard_normal((bs, *served[name].input_shape)).astype(np.float32)
        first = _forward(model, x)
        again = _forward(model, x)
        assert np.array_equal(first, again)


def test_materialize_deterministic_for_fixed_seed():
    """Two registries, same (name, variant, seed): identical weights and
    identical eval outputs — serving replicas built independently agree."""
    a = default_registry().materialize("mlp", "factorized", width=0.125, seed=3)
    b = default_registry().materialize("mlp", "factorized", width=0.125, seed=3)
    set_seed(0)
    rng = np.random.default_rng(5)
    x = rng.standard_normal((7, *a.input_shape)).astype(np.float32)
    assert np.array_equal(_forward(a.model, x), _forward(b.model, x))
    assert a.params == b.params and a.macs == b.macs
