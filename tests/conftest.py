"""Shared fixtures: deterministic seeding for every test."""

import numpy as np
import pytest

from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    set_seed(1234)
    np.random.seed(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
