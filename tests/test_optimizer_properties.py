"""Property-based optimizer invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, clip_grad_norm

GRADS = hnp.arrays(
    np.float32, st.integers(1, 16),
    elements=st.floats(-10, 10, allow_nan=False, width=32),
)


def param(values, grad):
    p = Parameter(np.asarray(values, dtype=np.float32))
    p.grad = np.asarray(grad, dtype=np.float32)
    return p


class TestSGDProperties:
    @given(GRADS, st.floats(0.001, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_step_is_linear_in_lr(self, g, lr):
        p1 = param(np.zeros_like(g), g)
        p2 = param(np.zeros_like(g), g)
        SGD([p1], lr=lr).step()
        SGD([p2], lr=2 * lr).step()
        assert np.allclose(p2.data, 2 * p1.data, rtol=1e-4, atol=1e-5)

    @given(GRADS)
    @settings(max_examples=40, deadline=None)
    def test_zero_lr_is_noop(self, g):
        p = param(np.ones_like(g), g)
        SGD([p], lr=0.0).step()
        assert np.allclose(p.data, 1.0)

    @given(GRADS, st.floats(0.1, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_momentum_first_step_equals_plain(self, g, mom):
        # With a fresh buffer, momentum SGD's first step equals vanilla.
        p1 = param(np.zeros_like(g), g.copy())
        p2 = param(np.zeros_like(g), g.copy())
        SGD([p1], lr=0.1).step()
        SGD([p2], lr=0.1, momentum=mom).step()
        assert np.allclose(p1.data, p2.data, rtol=1e-5, atol=1e-6)

    @given(GRADS)
    @settings(max_examples=30, deadline=None)
    def test_descent_direction(self, g):
        # A step moves opposite the gradient for every coordinate.
        p = param(np.zeros_like(g), g)
        SGD([p], lr=0.5).step()
        assert np.all(p.data * g <= 1e-6)


class TestAdamProperties:
    @given(GRADS.filter(lambda g: np.abs(g).min() > 0.1), st.floats(2.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance_of_first_step(self, g, scale):
        # Adam's first update depends on the gradient's sign pattern, not
        # its magnitude — exactly so only while |g| >> eps, hence the
        # filter keeping every coordinate away from the eps regime.
        p1 = param(np.zeros_like(g), g)
        p2 = param(np.zeros_like(g), g * np.float32(scale))
        Adam([p1], lr=0.1).step()
        Adam([p2], lr=0.1).step()
        assert np.allclose(p1.data, p2.data, rtol=1e-3, atol=1e-5)

    @given(GRADS)
    @settings(max_examples=30, deadline=None)
    def test_first_step_bounded_by_lr(self, g):
        p = param(np.zeros_like(g), g)
        Adam([p], lr=0.01).step()
        assert np.all(np.abs(p.data) <= 0.01 + 1e-6)


class TestClipProperties:
    @given(GRADS, st.floats(0.01, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_post_clip_norm_bounded(self, g, bound):
        p = param(np.zeros_like(g), g)
        clip_grad_norm([p], bound)
        assert np.linalg.norm(p.grad) <= bound * (1 + 1e-4) + 1e-6

    @given(GRADS, st.floats(0.01, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_clip_preserves_direction(self, g, bound):
        p = param(np.zeros_like(g), g.copy())
        clip_grad_norm([p], bound)
        # Clipped gradient is a non-negative scalar multiple of the input.
        dot = float(p.grad @ g)
        assert dot >= -1e-6

    @given(GRADS)
    @settings(max_examples=40, deadline=None)
    def test_reported_norm_matches_numpy(self, g):
        p = param(np.zeros_like(g), g)
        norm = clip_grad_norm([p], 1e9)
        assert norm == pytest.approx(float(np.linalg.norm(g.astype(np.float64))), rel=1e-4)
