"""Layer-level tests: Linear, Conv2d, norms, activations, pooling, dropout,
containers, embedding."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


class TestLinear:
    def test_output_shape(self, rng):
        lin = nn.Linear(8, 3)
        assert lin(Tensor(rng.standard_normal((5, 8)))).shape == (5, 3)

    def test_matches_manual_affine(self, rng):
        lin = nn.Linear(4, 2)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        out = lin(Tensor(x))
        assert np.allclose(out.data, x @ lin.weight.data.T + lin.bias.data, atol=1e-5)

    def test_no_bias(self, rng):
        lin = nn.Linear(4, 2, bias=False)
        assert lin.bias is None
        assert lin.num_parameters() == 8

    def test_3d_input_batched(self, rng):
        lin = nn.Linear(4, 2)
        out = lin(Tensor(rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 2)

    def test_gradcheck(self, rng):
        lin = nn.Linear(4, 3)
        x = Tensor(rng.standard_normal((5, 4)))
        check_gradients(lambda: (lin(x) ** 2).sum(), [lin.weight, lin.bias])


class TestConv2dLayer:
    def test_shapes_with_stride_padding(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_param_count(self):
        conv = nn.Conv2d(3, 8, 5, bias=True)
        assert conv.num_parameters() == 3 * 8 * 25 + 8

    def test_gradcheck(self, rng):
        conv = nn.Conv2d(2, 3, 3, padding=1)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        check_gradients(
            lambda: (conv(x) ** 2).sum(), [conv.weight, conv.bias], rtol=2e-2, atol=3e-3,
            max_bad_frac=0.03,
        )


class TestBatchNorm2d:
    def test_train_normalizes_batch(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 3 + 2)
        out = bn(x)
        assert abs(out.data.mean()) < 1e-4
        assert out.data.std() == pytest.approx(1.0, abs=0.05)

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 3, 3), 10.0, dtype=np.float32))
        bn(x)
        assert np.allclose(bn.running_mean, 5.0, atol=1e-4)  # 0.5*0 + 0.5*10

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(3)
        for _ in range(20):
            bn(Tensor(rng.standard_normal((16, 3, 4, 4)) * 2 + 1))
        bn.eval()
        x = Tensor(rng.standard_normal((4, 3, 4, 4)) * 2 + 1)
        out = bn(x)
        manual = (x.data - bn.running_mean[None, :, None, None]) / np.sqrt(
            bn.running_var[None, :, None, None] + bn.eps
        )
        assert np.allclose(out.data, manual, atol=1e-4)

    def test_eval_deterministic(self, rng):
        bn = nn.BatchNorm2d(3).eval()
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))
        assert np.allclose(bn(x).data, bn(x).data)

    def test_affine_params_applied(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.weight.data[:] = 2.0
        bn.bias.data[:] = 1.0
        out = bn(Tensor(rng.standard_normal((8, 2, 3, 3))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.01)

    def test_gradcheck_train_mode(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)))
        check_gradients(
            lambda: ((bn(x) * w).tanh()).sum(), [x, bn.weight, bn.bias],
            rtol=2e-2, atol=3e-3, max_bad_frac=0.03,
        )

    def test_gradcheck_eval_mode(self, rng):
        bn = nn.BatchNorm2d(3)
        bn(Tensor(rng.standard_normal((8, 3, 3, 3))))  # populate stats
        bn.eval()
        x = Tensor(rng.standard_normal((2, 3, 3, 3)), requires_grad=True)
        check_gradients(lambda: (bn(x) ** 2).sum(), [x, bn.weight, bn.bias],
                        max_bad_frac=0.05)


class TestBatchNorm1d:
    def test_shapes(self, rng):
        bn = nn.BatchNorm1d(5)
        assert bn(Tensor(rng.standard_normal((8, 5)))).shape == (8, 5)

    def test_normalizes(self, rng):
        bn = nn.BatchNorm1d(5)
        out = bn(Tensor(rng.standard_normal((64, 5)) * 4 + 3))
        assert abs(out.data.mean()) < 1e-4


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = nn.LayerNorm(16)
        out = ln(Tensor(rng.standard_normal((3, 5, 16)) * 3 + 1))
        assert np.allclose(out.data.mean(axis=-1), 0, atol=1e-4)
        assert np.allclose(out.data.std(axis=-1), 1, atol=0.05)

    def test_independent_of_batch(self, rng):
        # LayerNorm output for one row must not depend on other rows.
        ln = nn.LayerNorm(8)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        full = ln(Tensor(x)).data
        solo = ln(Tensor(x[:1])).data
        assert np.allclose(full[:1], solo, atol=1e-5)

    def test_gradcheck(self, rng):
        ln = nn.LayerNorm(6)
        x = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 6)))
        check_gradients(lambda: ((ln(x) * w).tanh()).sum(), [x, ln.weight, ln.bias],
                        rtol=2e-2, atol=3e-3)


class TestActivations:
    def test_relu_module(self, rng):
        assert np.all(nn.ReLU()(Tensor(rng.standard_normal(10))).data >= 0)

    def test_tanh_sigmoid_modules(self, rng):
        x = Tensor(rng.standard_normal(10))
        assert np.allclose(nn.Tanh()(x).data, np.tanh(x.data), atol=1e-6)
        assert np.all((nn.Sigmoid()(x).data > 0) & (nn.Sigmoid()(x).data < 1))

    def test_gelu_close_to_reference(self, rng):
        from scipy.stats import norm

        x = np.linspace(-3, 3, 50).astype(np.float32)
        out = nn.GELU()(Tensor(x)).data
        ref = x * norm.cdf(x)
        assert np.allclose(out, ref, atol=0.01)


class TestContainers:
    def test_sequential_chains(self, rng):
        net = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert net(Tensor(rng.standard_normal((3, 4)))).shape == (3, 2)

    def test_sequential_indexing_len_iter(self):
        net = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(net) == 2
        assert isinstance(net[1], nn.Tanh)
        assert len(list(net)) == 2

    def test_sequential_append(self, rng):
        net = nn.Sequential(nn.Linear(4, 4))
        net.append(nn.Linear(4, 2))
        assert net(Tensor(rng.standard_normal((1, 4)))).shape == (1, 2)

    def test_module_list_registers_params(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(ml)) == 2
        assert sum(1 for _ in ml[0].parameters()) == 2

    def test_module_list_has_no_forward(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([nn.ReLU()])(None)


class TestDropoutModule:
    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_eval_identity(self, rng):
        d = nn.Dropout(0.9).eval()
        x = Tensor(rng.standard_normal(100))
        assert np.allclose(d(x).data, x.data)


class TestEmbeddingModule:
    def test_lookup_shape(self, rng):
        emb = nn.Embedding(50, 8)
        out = emb(rng.integers(0, 50, (4, 6)))
        assert out.shape == (4, 6, 8)

    def test_padding_idx_zero_init(self):
        emb = nn.Embedding(10, 4, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0)


class TestFlattenPooling:
    def test_flatten(self, rng):
        f = nn.Flatten()
        assert f(Tensor(rng.standard_normal((2, 3, 4, 4)))).shape == (2, 48)

    def test_pool_modules(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(4)(x).shape == (1, 2, 2, 2)
        assert nn.GlobalAvgPool2d()(x).shape == (1, 2)
