"""scripts/regen_experiments.py: marker parsing, generation, --check."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "regen_experiments.py"

spec = importlib.util.spec_from_file_location("regen_experiments", SCRIPT)
regen = importlib.util.module_from_spec(spec)
spec.loader.exec_module(regen)


ARTIFACT = {
    "scenarios": {
        "variant_accounting": {
            "params_full": 1000,
            "params_factorized": 400,
            "macs_full": 9000,
            "macs_factorized": 6000,
            "compression": 2.5,
        },
        "pinned_crossover": {
            "slo_ms": 150.0,
            "max_batch": 16,
            "max_wait_ms": 10.0,
            "rates": [100, 200],
            "duration_s": 10.0,
            "seed": 0,
            "variants": {
                "full": {
                    "capacity_rps": 150.0,
                    "rates": {
                        "100": {"throughput_rps": 99.0, "shed_rate": 0.0,
                                "p50_ms": 20.0, "p99_ms": 40.0, "queue_depth_max": 3},
                        "200": {"throughput_rps": 149.0, "shed_rate": 0.2,
                                "p50_ms": 80.0, "p99_ms": 140.0, "queue_depth_max": 9},
                    },
                },
                "factorized": {
                    "capacity_rps": 180.0,
                    "rates": {
                        "100": {"throughput_rps": 99.5, "shed_rate": 0.0,
                                "p50_ms": 15.0, "p99_ms": 30.0, "queue_depth_max": 2},
                        "200": {"throughput_rps": 178.0, "shed_rate": 0.05,
                                "p50_ms": 60.0, "p99_ms": 120.0, "queue_depth_max": 7},
                    },
                },
            },
        },
    }
}

DOC = """# Experiments

prose stays untouched

<!-- regen:serving_crossover source=BENCH_serving.json -->
stale content
<!-- regen:end -->

trailing prose stays untouched
"""


@pytest.fixture
def bench_dir(tmp_path):
    (tmp_path / "BENCH_serving.json").write_text(json.dumps(ARTIFACT))
    return tmp_path


def test_regenerate_replaces_only_marked_section(bench_dir):
    new, names = regen.regenerate(DOC, bench_dir)
    assert names == ["serving_crossover"]
    assert "stale content" not in new
    assert "prose stays untouched" in new and "trailing prose stays untouched" in new
    assert "| 200 | factorized | 178.0 | 5.0% | 60.0 | 120.0 | 7 |" in new
    assert "full 150 rps, factorized 180 rps" in new


def test_regenerate_is_idempotent(bench_dir):
    once, _ = regen.regenerate(DOC, bench_dir)
    twice, _ = regen.regenerate(once, bench_dir)
    assert once == twice


def test_unknown_generator_raises(bench_dir):
    doc = DOC.replace("serving_crossover", "no_such_table")
    with pytest.raises(SystemExit, match="no generator"):
        regen.regenerate(doc, bench_dir)


def test_missing_artifact_raises(tmp_path):
    with pytest.raises(SystemExit, match="run the benchmark"):
        regen.regenerate(DOC, tmp_path)


def test_check_mode_detects_staleness(bench_dir, tmp_path, capsys):
    doc_path = tmp_path / "EXPERIMENTS.md"
    doc_path.write_text(DOC)
    rc = regen.main(["--check", "--file", str(doc_path), "--bench-dir", str(bench_dir)])
    assert rc == 1
    assert "stale" in capsys.readouterr().out
    # Rewrite, then --check goes green.
    assert regen.main(["--file", str(doc_path), "--bench-dir", str(bench_dir)]) == 0
    rc = regen.main(["--check", "--file", str(doc_path), "--bench-dir", str(bench_dir)])
    assert rc == 0


def test_no_markers_is_a_noop(bench_dir, tmp_path):
    doc_path = tmp_path / "PLAIN.md"
    doc_path.write_text("# nothing generated here\n")
    assert regen.main(["--file", str(doc_path), "--bench-dir", str(bench_dir)]) == 0
    assert doc_path.read_text() == "# nothing generated here\n"


def test_repo_experiments_md_is_current():
    """The committed EXPERIMENTS.md must match the committed baseline
    artifact — the same sync CI enforces after the serving benchmark."""
    baseline = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "baselines"
        / "serving_baseline.json"
    )
    artifact = json.loads(baseline.read_text())
    lines = regen.gen_serving_crossover(artifact)
    committed = regen.EXPERIMENTS.read_text()
    for line in lines:
        assert line in committed
