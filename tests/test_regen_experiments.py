"""scripts/regen_experiments.py: marker parsing, generation, --check."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "regen_experiments.py"

spec = importlib.util.spec_from_file_location("regen_experiments", SCRIPT)
regen = importlib.util.module_from_spec(spec)
spec.loader.exec_module(regen)


ARTIFACT = {
    "scenarios": {
        "variant_accounting": {
            "params_full": 1000,
            "params_factorized": 400,
            "macs_full": 9000,
            "macs_factorized": 6000,
            "compression": 2.5,
        },
        "pinned_crossover": {
            "slo_ms": 150.0,
            "max_batch": 16,
            "max_wait_ms": 10.0,
            "rates": [100, 200],
            "duration_s": 10.0,
            "seed": 0,
            "variants": {
                "full": {
                    "capacity_rps": 150.0,
                    "rates": {
                        "100": {"throughput_rps": 99.0, "shed_rate": 0.0,
                                "p50_ms": 20.0, "p99_ms": 40.0, "queue_depth_max": 3},
                        "200": {"throughput_rps": 149.0, "shed_rate": 0.2,
                                "p50_ms": 80.0, "p99_ms": 140.0, "queue_depth_max": 9},
                    },
                },
                "factorized": {
                    "capacity_rps": 180.0,
                    "rates": {
                        "100": {"throughput_rps": 99.5, "shed_rate": 0.0,
                                "p50_ms": 15.0, "p99_ms": 30.0, "queue_depth_max": 2},
                        "200": {"throughput_rps": 178.0, "shed_rate": 0.05,
                                "p50_ms": 60.0, "p99_ms": 120.0, "queue_depth_max": 7},
                    },
                },
            },
        },
    }
}

DOC = """# Experiments

prose stays untouched

<!-- regen:serving_crossover source=BENCH_serving.json -->
stale content
<!-- regen:end -->

trailing prose stays untouched
"""


@pytest.fixture
def bench_dir(tmp_path):
    (tmp_path / "BENCH_serving.json").write_text(json.dumps(ARTIFACT))
    return tmp_path


def test_regenerate_replaces_only_marked_section(bench_dir):
    new, names = regen.regenerate(DOC, bench_dir)
    assert names == ["serving_crossover"]
    assert "stale content" not in new
    assert "prose stays untouched" in new and "trailing prose stays untouched" in new
    assert "| 200 | factorized | 178.0 | 5.0% | 60.0 | 120.0 | 7 |" in new
    assert "full 150 rps, factorized 180 rps" in new


def test_regenerate_is_idempotent(bench_dir):
    once, _ = regen.regenerate(DOC, bench_dir)
    twice, _ = regen.regenerate(once, bench_dir)
    assert once == twice


def test_unknown_generator_raises(bench_dir):
    doc = DOC.replace("serving_crossover", "no_such_table")
    with pytest.raises(SystemExit, match="no generator"):
        regen.regenerate(doc, bench_dir)


def test_missing_artifact_raises(tmp_path):
    with pytest.raises(SystemExit, match="run the benchmark"):
        regen.regenerate(DOC, tmp_path)


def test_check_mode_detects_staleness(bench_dir, tmp_path, capsys):
    doc_path = tmp_path / "EXPERIMENTS.md"
    doc_path.write_text(DOC)
    rc = regen.main(["--check", "--file", str(doc_path), "--bench-dir", str(bench_dir)])
    assert rc == 1
    assert "stale" in capsys.readouterr().out
    # Rewrite, then --check goes green.
    assert regen.main(["--file", str(doc_path), "--bench-dir", str(bench_dir)]) == 0
    rc = regen.main(["--check", "--file", str(doc_path), "--bench-dir", str(bench_dir)])
    assert rc == 0


def test_no_markers_is_a_noop(bench_dir, tmp_path):
    doc_path = tmp_path / "PLAIN.md"
    doc_path.write_text("# nothing generated here\n")
    assert regen.main(["--file", str(doc_path), "--bench-dir", str(bench_dir)]) == 0
    assert doc_path.read_text() == "# nothing generated here\n"


def test_repo_experiments_md_is_current():
    """The committed EXPERIMENTS.md must match the committed baseline
    artifact — the same sync CI enforces after the serving benchmark."""
    baseline = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "baselines"
        / "serving_baseline.json"
    )
    artifact = json.loads(baseline.read_text())
    lines = regen.gen_serving_crossover(artifact)
    committed = regen.EXPERIMENTS.read_text()
    for line in lines:
        assert line in committed


FAULTS_ARTIFACT = {
    "scenarios": {
        "drop_p0.1": {"events": 5, "retries": 5, "backoff_s": 0.05,
                      "recovery_s": 0.0, "comm_s": 0.5, "other_s": 0.0},
        "straggler": {"events": 12, "retries": 0, "backoff_s": 0.0,
                      "recovery_s": 1.25, "comm_s": 0.04, "other_s": 0.0},
    }
}

OVERLAP_ARTIFACT = {
    "scenarios": {
        "bucket_structure": {"n_buckets": 2, "sizes": [1_000_000, 2_000_000],
                             "offsets": [2_000_000, 0]},
        "overlap_mlp": {"payload_bytes": 3_000_000},
        "fused_sgd": {"n_tensors": 10, "n_params": 750_000},
    }
}

CLUSTER_ARTIFACT = {
    "scenarios": {
        "fleet_cost": {
            "host_mem_mb": 12.0, "host_rps": 2000.0, "replicas_per_variant": 6,
            "variants": {
                "full": {"replica_mem_mb": 5.15, "capacity_rps": 416.0,
                         "n_hosts": 3, "fleet_cost": 3.0, "shed_rate": 0.05},
                "factorized": {"replica_mem_mb": 2.10, "capacity_rps": 444.0,
                               "n_hosts": 2, "fleet_cost": 2.0, "shed_rate": 0.014},
            },
        },
        "autoscale_spike": {
            "phases": "250x60,450x60", "window_s": 10.0, "policy": "shed_rate",
            "initial_replicas": 1, "final_replicas": 2, "max_replicas": 2,
            "n_scale_events": 1, "oscillations": 0, "steady_state_shed": 0.0,
            "timeline_digest": "abcd1234",
        },
    }
}


class TestSatelliteGenerators:
    """The faults/overlap/cluster tables ride the same marker machinery."""

    def test_fault_injection_table(self, tmp_path):
        (tmp_path / "BENCH_faults.json").write_text(json.dumps(FAULTS_ARTIFACT))
        doc = ("<!-- regen:fault_injection source=BENCH_faults.json -->\n"
               "old\n<!-- regen:end -->")
        new, names = regen.regenerate(doc, tmp_path)
        assert names == ["fault_injection"]
        assert "| `drop_p0.1` | 5 | 5 | 50 | 0.000 | 0.5000 |" in new
        assert "| `straggler` | 12 | 0 | 0 | 1.250 | 0.0400 |" in new

    def test_overlap_buckets_table(self, tmp_path):
        (tmp_path / "BENCH_overlap.json").write_text(json.dumps(OVERLAP_ARTIFACT))
        doc = ("<!-- regen:overlap_buckets source=BENCH_overlap.json -->\n"
               "old\n<!-- regen:end -->")
        new, names = regen.regenerate(doc, tmp_path)
        assert names == ["overlap_buckets"]
        assert "2 buckets over 3,000,000 payload bytes" in new
        assert "10 tensors / 750,000 parameters" in new
        assert "| 0 | 1.00 | 2.00 |" in new

    def test_cluster_fleet_table(self, tmp_path):
        (tmp_path / "BENCH_cluster.json").write_text(json.dumps(CLUSTER_ARTIFACT))
        doc = ("<!-- regen:cluster_fleet source=BENCH_cluster.json -->\n"
               "old\n<!-- regen:end -->")
        new, names = regen.regenerate(doc, tmp_path)
        assert names == ["cluster_fleet"]
        assert "| full | 5.15 | 416 | 3 | 3.0 | 5.00% |" in new
        assert "| factorized | 2.10 | 444 | 2 | 2.0 | 1.40% |" in new
        assert "replicas 1 → 2 (peak 2)" in new
        assert "`abcd1234`" in new

    def test_multiple_markers_in_one_pass(self, tmp_path):
        (tmp_path / "BENCH_faults.json").write_text(json.dumps(FAULTS_ARTIFACT))
        (tmp_path / "BENCH_overlap.json").write_text(json.dumps(OVERLAP_ARTIFACT))
        doc = ("<!-- regen:fault_injection source=BENCH_faults.json -->\n"
               "a\n<!-- regen:end -->\n\n"
               "<!-- regen:overlap_buckets source=BENCH_overlap.json -->\n"
               "b\n<!-- regen:end -->")
        new, names = regen.regenerate(doc, tmp_path)
        assert names == ["fault_injection", "overlap_buckets"]
        once, _ = regen.regenerate(new, tmp_path)
        assert once == new

    def test_repo_faults_section_is_current(self):
        baseline = Path(regen.REPO_ROOT) / "benchmarks" / "baselines" / "faults_baseline.json"
        lines = regen.gen_fault_injection(json.loads(baseline.read_text()))
        committed = regen.EXPERIMENTS.read_text()
        for line in lines:
            assert line in committed

    def test_repo_cluster_section_is_current(self):
        baseline = Path(regen.REPO_ROOT) / "benchmarks" / "baselines" / "cluster_baseline.json"
        lines = regen.gen_cluster_fleet(json.loads(baseline.read_text()))
        committed = regen.EXPERIMENTS.read_text()
        for line in lines:
            assert line in committed


KERNELS_ARTIFACT = {
    "schema": 1,
    "parity_all_ok": True,
    "ops": {
        "conv2d_forward": {"tag": "tolerance", "shape": "N32 C16 32x32",
                           "numpy_ms": 24.0, "fast_ms": 10.0, "speedup": 2.4,
                           "parity_ok": True, "max_abs_err": 0.0,
                           "min_speedup": 1.5},
        "relu": {"tag": "bit-exact", "shape": "2M elements",
                 "numpy_ms": 2.2, "fast_ms": 0.9, "speedup": 2.444,
                 "parity_ok": True, "max_abs_err": 0.0, "min_speedup": None},
    },
}


class TestKernelSpeedups:
    """The backend speedup table in docs/PERFORMANCE.md sources the
    *committed* baseline, so --check never flaps on machine noise."""

    def test_kernel_speedups_table(self, tmp_path):
        src = tmp_path / "benchmarks" / "baselines"
        src.mkdir(parents=True)
        (src / "kernels_baseline.json").write_text(json.dumps(KERNELS_ARTIFACT))
        doc = ("<!-- regen:kernel_speedups "
               "source=benchmarks/baselines/kernels_baseline.json -->\n"
               "old\n<!-- regen:end -->")
        new, names = regen.regenerate(doc, tmp_path)
        assert names == ["kernel_speedups"]
        assert (
            "| `conv2d_forward` | tolerance | N32 C16 32x32 | 24.00 | 10.00 | 2.40× | ≥1.5× |"
            in new
        )
        assert "| `relu` | bit-exact | 2M elements | 2.20 | 0.90 | 2.44× | — |" in new

    def test_repo_performance_md_is_current(self):
        baseline = (Path(regen.REPO_ROOT) / "benchmarks" / "baselines"
                    / "kernels_baseline.json")
        lines = regen.gen_kernel_speedups(json.loads(baseline.read_text()))
        committed = regen.PERFORMANCE.read_text()
        for line in lines:
            assert line in committed

    def test_default_file_list_covers_both_docs(self):
        assert regen.EXPERIMENTS.name == "EXPERIMENTS.md"
        assert regen.PERFORMANCE == regen.REPO_ROOT / "docs" / "PERFORMANCE.md"

    def test_multiple_files_worst_exit_code_wins(self, bench_dir, tmp_path, capsys):
        fresh = tmp_path / "fresh.md"
        fresh.write_text("# no markers\n")
        stale = tmp_path / "stale.md"
        stale.write_text(DOC)
        rc = regen.main(["--check", "--file", str(fresh), "--file", str(stale),
                         "--bench-dir", str(bench_dir)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "no markers" in out and "stale" in out
