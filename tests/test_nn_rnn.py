"""LSTM layer and stacked-LSTM tests: shapes, state handling, gates,
gradients, and equivalence with a step-by-step manual recurrence."""

import numpy as np

from repro import nn
from repro.tensor import Tensor, check_gradients


def manual_lstm_forward(layer, x):
    """Reference NumPy recurrence for a single LSTM layer."""
    t_len, b, d = x.shape
    h = np.zeros((b, layer.hidden_size), dtype=np.float32)
    c = np.zeros((b, layer.hidden_size), dtype=np.float32)
    hsz = layer.hidden_size
    outs = []
    sig = lambda z: 1.0 / (1.0 + np.exp(-z))
    for t in range(t_len):
        gates = (
            x[t] @ layer.weight_ih.data.T
            + layer.bias_ih.data
            + h @ layer.weight_hh.data.T
            + layer.bias_hh.data
        )
        i = sig(gates[:, :hsz])
        f = sig(gates[:, hsz : 2 * hsz])
        g = np.tanh(gates[:, 2 * hsz : 3 * hsz])
        o = sig(gates[:, 3 * hsz :])
        c = f * c + i * g
        h = o * np.tanh(c)
        outs.append(h.copy())
    return np.stack(outs), h, c


class TestLSTMLayer:
    def test_output_shapes(self, rng):
        layer = nn.LSTMLayer(6, 10)
        out, (h, c) = layer(Tensor(rng.standard_normal((5, 3, 6))))
        assert out.shape == (5, 3, 10)
        assert h.shape == (3, 10) and c.shape == (3, 10)

    def test_matches_manual_recurrence(self, rng):
        layer = nn.LSTMLayer(4, 5)
        x = rng.standard_normal((6, 2, 4)).astype(np.float32)
        out, (h, c) = layer(Tensor(x))
        ref_out, ref_h, ref_c = manual_lstm_forward(layer, x)
        assert np.allclose(out.data, ref_out, atol=1e-4)
        assert np.allclose(h.data, ref_h, atol=1e-4)
        assert np.allclose(c.data, ref_c, atol=1e-4)

    def test_last_output_equals_final_state(self, rng):
        layer = nn.LSTMLayer(4, 5)
        out, (h, _) = layer(Tensor(rng.standard_normal((3, 2, 4))))
        assert np.allclose(out.data[-1], h.data, atol=1e-6)

    def test_state_carry_equivalence(self, rng):
        # Processing [a; b] at once == processing a then b with carried state.
        layer = nn.LSTMLayer(3, 4)
        x = rng.standard_normal((6, 2, 3)).astype(np.float32)
        full, _ = layer(Tensor(x))
        first, state = layer(Tensor(x[:3]))
        second, _ = layer(Tensor(x[3:]), state)
        assert np.allclose(full.data[:3], first.data, atol=1e-5)
        assert np.allclose(full.data[3:], second.data, atol=1e-5)

    def test_param_count_matches_table1(self):
        d, h = 7, 9
        layer = nn.LSTMLayer(d, h)
        assert layer.num_parameters() == 4 * (d * h + h * h) + 8 * h  # + biases

    def test_gradcheck(self, rng):
        layer = nn.LSTMLayer(3, 4)
        x = Tensor(rng.standard_normal((3, 2, 3)))
        check_gradients(
            lambda: (layer(x)[0] ** 2).sum(),
            [layer.weight_ih, layer.weight_hh, layer.bias_ih, layer.bias_hh],
            rtol=2e-2,
            atol=2e-3,
        )

    def test_input_gradient_flows(self, rng):
        layer = nn.LSTMLayer(3, 4)
        x = Tensor(rng.standard_normal((3, 2, 3)), requires_grad=True)
        out, _ = layer(x)
        out.sum().backward()
        assert x.grad is not None and np.abs(x.grad).max() > 0


class TestStackedLSTM:
    def test_shapes_two_layers(self, rng):
        lstm = nn.LSTM(6, 8, num_layers=2)
        out, states = lstm(Tensor(rng.standard_normal((4, 3, 6))))
        assert out.shape == (4, 3, 8)
        assert len(states) == 2

    def test_dropout_only_between_layers(self, rng):
        lstm = nn.LSTM(6, 8, num_layers=2, dropout=0.5)
        lstm.eval()
        x = Tensor(rng.standard_normal((4, 3, 6)))
        out1, _ = lstm(x)
        out2, _ = lstm(x)
        assert np.allclose(out1.data, out2.data)  # eval: deterministic

    def test_all_params_receive_grads(self, rng):
        lstm = nn.LSTM(5, 6, num_layers=2)
        out, _ = lstm(Tensor(rng.standard_normal((3, 2, 5))))
        out.sum().backward()
        assert all(p.grad is not None for p in lstm.parameters())

    def test_states_usable_for_bptt_chunks(self, rng):
        lstm = nn.LSTM(4, 5, num_layers=2)
        x = rng.standard_normal((4, 2, 4)).astype(np.float32)
        _, states = lstm(Tensor(x))
        detached = [(h.detach(), c.detach()) for h, c in states]
        out, _ = lstm(Tensor(x), detached)
        out.sum().backward()  # must not traverse into previous chunk
        assert all(p.grad is not None for p in lstm.parameters())
