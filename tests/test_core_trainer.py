"""Trainer and PufferfishTrainer (Algorithm 1) behavior."""

import numpy as np
import pytest

from repro import nn
from repro.core import FactorizationConfig, PufferfishTrainer, Trainer
from repro.data import DataLoader
from repro.optim import SGD


def make_task(rng, n=96, num_classes=3, dim=12):
    """Linearly separable synthetic task so a few epochs suffice."""
    x = rng.standard_normal((n, dim)).astype(np.float32)
    w = rng.standard_normal((dim, num_classes))
    y = (x @ w).argmax(axis=1)
    return x, y


def make_model(dim=12, num_classes=3):
    return nn.Sequential(nn.Linear(dim, 32), nn.ReLU(), nn.Linear(32, 32), nn.ReLU(),
                         nn.Linear(32, num_classes))


class TestTrainer:
    def test_loss_decreases(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 16, shuffle=True)
        model = make_model()
        t = Trainer(model, SGD(model.parameters(), lr=0.1, momentum=0.9))
        t.fit(loader, loader, epochs=5)
        assert t.history[-1].train_loss < t.history[0].train_loss

    def test_history_fields(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        t = Trainer(model, SGD(model.parameters(), lr=0.05))
        t.fit(loader, loader, epochs=2)
        assert len(t.history) == 2
        s = t.history[0]
        assert s.epoch == 0 and s.num_parameters == model.num_parameters()
        assert 0.0 <= s.val_metric <= 1.0

    def test_evaluate_does_not_update_params(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        before = model.state_dict()
        Trainer(model, SGD(model.parameters(), lr=0.1)).evaluate(loader)
        after = model.state_dict()
        for k in before:
            assert np.allclose(before[k], after[k])

    def test_grad_clip_applied(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        t = Trainer(model, SGD(model.parameters(), lr=0.05), grad_clip=1e-8)
        before = model.state_dict()
        t.fit(loader, loader, epochs=1)
        # With a near-zero clip the weights barely move.
        for k, v in model.state_dict().items():
            assert np.allclose(before[k], v, atol=1e-4)

    def test_post_step_callback_invoked(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        calls = []
        t = Trainer(model, SGD(model.parameters(), lr=0.05), post_step=lambda m: calls.append(1))
        t.fit(loader, loader, epochs=1)
        assert len(calls) == len(loader)

    def test_amp_mode_trains(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 16, shuffle=True)
        model = make_model()
        t = Trainer(model, SGD(model.parameters(), lr=0.1, momentum=0.9), amp=True)
        t.fit(loader, loader, epochs=4)
        assert t.history[-1].train_loss < t.history[0].train_loss

    def test_scheduler_steps_per_epoch(self, rng):
        from repro.optim import MultiStepLR

        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        opt = SGD(model.parameters(), lr=0.1)
        t = Trainer(model, opt, scheduler=MultiStepLR(opt, [1], gamma=0.1))
        t.fit(loader, loader, epochs=2)
        assert opt.lr == pytest.approx(0.01)


class TestPufferfishTrainer:
    def _run(self, rng, warmup, total):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 16, shuffle=True)
        model = make_model()
        pt = PufferfishTrainer(
            model,
            FactorizationConfig(rank_ratio=0.25),
            optimizer_factory=lambda ps: SGD(ps, lr=0.1, momentum=0.9),
            warmup_epochs=warmup,
            total_epochs=total,
        )
        hybrid = pt.fit(loader, loader)
        return pt, hybrid, model

    def test_phase_sequence(self, rng):
        pt, hybrid, model = self._run(rng, warmup=2, total=5)
        phases = [s.phase for s in pt.history]
        assert phases == ["warmup", "warmup", "lowrank", "lowrank", "lowrank"]

    def test_param_count_drops_at_switch(self, rng):
        pt, hybrid, model = self._run(rng, warmup=2, total=4)
        assert pt.history[1].num_parameters > pt.history[2].num_parameters
        assert hybrid.num_parameters() < model.num_parameters()

    def test_report_available(self, rng):
        pt, _, _ = self._run(rng, warmup=1, total=2)
        assert pt.report is not None
        assert pt.report.compression > 1.0

    def test_zero_warmup_trains_lowrank_from_scratch(self, rng):
        pt, hybrid, _ = self._run(rng, warmup=0, total=3)
        assert all(s.phase == "lowrank" for s in pt.history)

    def test_warmup_equals_total_is_vanilla_training(self, rng):
        pt, hybrid, _ = self._run(rng, warmup=3, total=3)
        assert all(s.phase == "warmup" for s in pt.history)
        # The hybrid exists but was never trained further.
        assert pt.report is not None

    def test_warmup_exceeding_total_raises(self, rng):
        model = make_model()
        with pytest.raises(ValueError):
            PufferfishTrainer(
                model,
                FactorizationConfig(),
                optimizer_factory=lambda ps: SGD(ps, lr=0.1),
                warmup_epochs=5,
                total_epochs=3,
            )

    def test_learns_the_task(self, rng):
        pt, hybrid, _ = self._run(rng, warmup=3, total=10)
        assert pt.history[-1].val_metric > 0.7

    def test_epoch_numbering_continuous(self, rng):
        pt, _, _ = self._run(rng, warmup=2, total=5)
        assert [s.epoch for s in pt.history] == [0, 1, 2, 3, 4]

    def test_lr_decay_at_switch(self, rng):
        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        pt = PufferfishTrainer(
            model,
            FactorizationConfig(rank_ratio=0.25),
            optimizer_factory=lambda ps: SGD(ps, lr=0.1),
            warmup_epochs=1,
            total_epochs=2,
            lr_decay_at_switch=0.5,
        )
        pt.fit(loader, loader)
        assert pt.history[-1].lr == pytest.approx(0.05)


class TestConfigBuilder:
    def test_builder_sees_warmup_weights(self, rng):
        """config_builder must receive the model *after* warm-up training."""
        from repro.core import FactorizationConfig

        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        initial = model.state_dict()
        seen = {}

        def builder(m):
            seen["weights_changed"] = not all(
                np.allclose(initial[k], v) for k, v in m.state_dict().items()
            )
            return FactorizationConfig(rank_ratio=0.5)

        pt = PufferfishTrainer(
            model,
            FactorizationConfig(rank_ratio=0.25),
            optimizer_factory=lambda ps: SGD(ps, lr=0.1),
            warmup_epochs=2,
            total_epochs=3,
            config_builder=builder,
        )
        pt.fit(loader, loader)
        assert seen["weights_changed"]
        # The builder's config (ratio 0.5) won, not the constructor's 0.25.
        assert pt.config.rank_ratio == 0.5

    def test_spectrum_allocation_via_builder(self, rng):
        from repro.core import FactorizationConfig, energy_rank_allocation

        x, y = make_task(rng)
        loader = DataLoader(x, y, 32)
        model = make_model()
        pt = PufferfishTrainer(
            model,
            FactorizationConfig(),
            optimizer_factory=lambda ps: SGD(ps, lr=0.1),
            warmup_epochs=1,
            total_epochs=2,
            config_builder=lambda m: FactorizationConfig(
                rank_overrides=energy_rank_allocation(m, 0.8)
            ),
        )
        pt.fit(loader, loader)
        assert pt.report.replaced  # the allocation produced real overrides
