"""CLI smoke tests: every subcommand end-to-end on tiny workloads."""

import time

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "resnet18"
        assert args.method == "pufferfish"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "alexnet"])

    def test_rejects_unknown_compressor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--compressor", "zip"])


class TestFactorizeCommand:
    def test_runs_for_each_model(self, capsys):
        for model in ("mlp", "vgg11", "resnet18"):
            rc = main(["factorize", "--model", model, "--width", "0.125",
                       "--classes", "4"])
            assert rc == 0
        out = capsys.readouterr().out
        assert "x smaller" in out
        assert "factorized layers" in out


class TestTrainCommand:
    def test_pufferfish_training(self, capsys):
        rc = main([
            "train", "--model", "mlp", "--method", "pufferfish",
            "--epochs", "3", "--warmup-epochs", "1", "--samples", "96",
            "--batch-size", "32",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best val accuracy" in out
        assert "factorized:" in out

    def test_vanilla_training(self, capsys):
        rc = main([
            "train", "--model", "mlp", "--method", "vanilla",
            "--epochs", "2", "--samples", "96", "--batch-size", "32",
        ])
        assert rc == 0
        assert "best val accuracy" in capsys.readouterr().out

    def test_checkpoint_written(self, tmp_path, capsys):
        ckpt = tmp_path / "final.npz"
        rc = main([
            "train", "--model", "mlp", "--method", "vanilla",
            "--epochs", "1", "--samples", "64", "--batch-size", "32",
            "--checkpoint", str(ckpt),
        ])
        assert rc == 0
        assert ckpt.exists()
        with np.load(ckpt) as data:
            assert any(k.startswith("model/") for k in data.files)


class TestSimulateCommand:
    def test_vanilla_simulation(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compute" in out and "comm" in out

    def test_pufferfish_with_compressor(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--method", "pufferfish",
            "--nodes", "2", "--compressor", "topk",
            "--batch-size", "8", "--iterations", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pufferfish model" in out

    @pytest.mark.parametrize(
        "compressor",
        ["powersgd", "signum", "qsgd", "binary", "atomo", "abtrain", "vargate"],
    )
    def test_every_compressor_runs(self, compressor, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--compressor", compressor, "--batch-size", "8",
            "--iterations", "1",
        ])
        assert rc == 0


class TestSimulateOverlap:
    def test_overlap_prints_bucket_summary(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "2",
            "--overlap", "--bucket-mb", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlap:" in out and "buckets" in out and "hidden" in out

    def test_overlap_composes_with_faults(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "4",
            "--batch-size", "8", "--iterations", "2",
            "--overlap", "--bucket-mb", "0.05",
            "--faults", "seed=42,straggler=lognormal:0.5:0.4:1.0,drop=0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlap:" in out
        assert "faults (seed 42)" in out

    def test_overlap_rejects_non_allreduce_compressor(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
            "--overlap", "--compressor", "topk",
        ])
        assert rc == 2
        assert "allreduce-compatible" in capsys.readouterr().err

    @pytest.mark.parametrize("compressor", ["powersgd", "abtrain", "vargate"])
    def test_overlap_accepts_allreduce_compressor(self, compressor, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "2",
            "--overlap", "--bucket-mb", "0.05",
            "--compressor", compressor,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlap:" in out and "buckets" in out

    def test_hierarchical_topology_flags(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--gpus-per-node", "2", "--intra-bandwidth", "50",
            "--batch-size", "8", "--iterations", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 nodes x 2 gpus" in out and "intra" in out

    def test_rejects_nonpositive_gpus_per_node(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--gpus-per-node", "0",
        ])
        assert rc == 2
        assert "--gpus-per-node" in capsys.readouterr().err

    def test_no_fused_flag_runs_per_tensor_path(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1", "--no-fused",
        ])
        assert rc == 0


class TestTrainFused:
    def test_fused_training(self, capsys):
        rc = main([
            "train", "--model", "mlp", "--method", "vanilla",
            "--epochs", "1", "--samples", "64", "--batch-size", "32",
            "--fused",
        ])
        assert rc == 0
        assert "best val accuracy" in capsys.readouterr().out

    def test_fused_rejects_amp(self, capsys):
        rc = main([
            "train", "--model", "mlp", "--method", "vanilla",
            "--epochs", "1", "--samples", "64", "--batch-size", "32",
            "--fused", "--amp",
        ])
        assert rc == 2
        assert "amp" in capsys.readouterr().err

    def test_optimizer_defaults_per_task(self):
        args = build_parser().parse_args(["train"])
        assert args.task == "cifar" and args.optimizer is None and args.lr is None

    @pytest.mark.parametrize("extra", [[], ["--fused"], ["--optimizer", "lamb"]])
    def test_transformer_task(self, extra, capsys):
        rc = main([
            "train", "--task", "transformer", "--method", "vanilla",
            "--epochs", "1", "--samples", "96", "--batch-size", "32",
        ] + extra)
        assert rc == 0
        out = capsys.readouterr().out
        assert "val BLEU" in out and "val perplexity" in out

    def test_transformer_pufferfish_fused_adam(self, capsys):
        rc = main([
            "train", "--task", "transformer", "--method", "pufferfish",
            "--epochs", "2", "--warmup-epochs", "1", "--samples", "96",
            "--batch-size", "32", "--fused",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "factorized:" in out and "val BLEU" in out

    def test_cifar_with_adam(self, capsys):
        rc = main([
            "train", "--model", "mlp", "--method", "vanilla",
            "--epochs", "1", "--samples", "64", "--batch-size", "32",
            "--optimizer", "adam", "--fused",
        ])
        assert rc == 0
        assert "best val accuracy" in capsys.readouterr().out


class TestSimulateOptimizers:
    @pytest.mark.parametrize("optimizer", ["adam", "lamb"])
    def test_fused_optimizer_simulation(self, optimizer, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
            "--optimizer", optimizer,
        ])
        assert rc == 0
        assert "compute" in capsys.readouterr().out

    def test_fused_adam_with_compressor_overlap(self, capsys):
        """--fused composes with --compressor on the allreduce-compatible
        overlap path."""
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "2",
            "--optimizer", "adam", "--overlap", "--bucket-mb", "0.05",
            "--compressor", "powersgd",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlap:" in out and "buckets" in out

    def test_loop_adam_simulation(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
            "--optimizer", "adam", "--no-fused",
        ])
        assert rc == 0


class TestSimulateFaults:
    def test_faulty_simulation_prints_summary(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "4",
            "--batch-size", "8", "--iterations", "2",
            "--faults", "seed=42,straggler=lognormal:0.5:0.4:1.0,drop=0.05:8:0.02:0.01",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults (seed 42)" in out
        assert "retries" in out

    def test_inert_spec_prints_no_fault_summary(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
            "--faults", "seed=7",
        ])
        assert rc == 0
        assert "faults (seed" not in capsys.readouterr().out

    def test_json_file_spec(self, tmp_path, capsys):
        spec = tmp_path / "chaos.json"
        spec.write_text(
            '{"seed": 5, "straggler": {"kind": "constant", "prob": 1.0, "scale": 0.5}}'
        )
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
            "--faults", str(spec),
        ])
        assert rc == 0
        assert "faults (seed 5)" in capsys.readouterr().out

    def test_bad_spec_exits_2(self, capsys):
        rc = main([
            "simulate", "--model", "mlp", "--nodes", "2",
            "--batch-size", "8", "--iterations", "1",
            "--faults", "straggler=warp9",
        ])
        assert rc == 2
        assert "bad --faults spec" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_mlp_smoke(self, capsys):
        rc = main([
            "serve", "--model", "mlp", "--variant", "full", "--rate", "50",
            "--duration", "2", "--slo-ms", "100", "--seed", "0",
            "--profile-repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "single-replica capacity" in out
        assert "timeline digest:" in out
        assert "latency p50" in out

    def test_serve_factorized_reports_compression(self, capsys):
        rc = main([
            "serve", "--model", "mlp", "--variant", "factorized", "--rate", "50",
            "--duration", "2", "--slo-ms", "100", "--seed", "0",
            "--profile-repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "low-rank layers" in out
        assert "x)" in out  # compression factor printed

    def test_serve_deterministic_with_saved_profile(self, tmp_path, capsys):
        """Acceptance criterion: a fixed seed + fixed profile reproduces the
        request timeline and shed decisions exactly (identical digests)."""
        prof = tmp_path / "prof.json"
        args = [
            "serve", "--model", "mlp", "--rate", "200", "--duration", "3",
            "--slo-ms", "50", "--seed", "0",
        ]
        rc = main(args + ["--profile-repeats", "1", "--save-profile", str(prof)])
        assert rc == 0
        first = capsys.readouterr().out
        digest = [l for l in first.splitlines() if "timeline digest" in l]
        rc = main(args + ["--latency-profile", str(prof)])
        assert rc == 0
        second = capsys.readouterr().out
        assert digest == [l for l in second.splitlines() if "timeline digest" in l]

    def test_serve_timeline_json_written(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "timeline.json"
        rc = main([
            "serve", "--model", "mlp", "--rate", "50", "--duration", "2",
            "--slo-ms", "100", "--seed", "0", "--profile-repeats", "1",
            "--timeline", str(out_path),
        ])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert set(payload) >= {"summary", "timeline", "batches"}
        assert payload["summary"]["n_requests"] == len(payload["timeline"])

    def test_serve_bad_config_exits_2(self, capsys):
        rc = main([
            "serve", "--model", "mlp", "--rate", "-5", "--duration", "2",
            "--slo-ms", "100",
        ])
        assert rc == 2
        assert "bad serve configuration" in capsys.readouterr().err

    def test_serve_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--variant", "half"])


class TestClusterCommand:
    """`repro cluster` — placement, autoscaling, and canary subcommands,
    all replaying saved latency profiles so no live measurement runs."""

    BATCHES = (1, 2, 4, 8, 16, 32)
    FULL_S = (0.0047, 0.0074, 0.0124, 0.0212, 0.0392, 0.0769)
    FACT_S = (0.0043, 0.0064, 0.0119, 0.0205, 0.0371, 0.0721)

    @pytest.fixture
    def profiles(self, tmp_path):
        from repro.serve import LatencyProfile

        full = tmp_path / "full.json"
        fact = tmp_path / "fact.json"
        LatencyProfile(self.BATCHES, self.FULL_S).save(full)
        LatencyProfile(self.BATCHES, self.FACT_S).save(fact)
        return str(full), str(fact)

    def test_place_compares_variants(self, profiles, capsys):
        full, fact = profiles
        rc = main([
            "cluster", "place", "--model", "vgg19", "--width", "0.25",
            "--replicas", "6", "--profile-full", full,
            "--profile-factorized", fact,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "factorized fleet uses 2/3 hosts" in out
        assert "lower bound" in out

    def test_place_writes_json(self, profiles, tmp_path, capsys):
        import json

        full, fact = profiles
        out_path = tmp_path / "placement.json"
        rc = main([
            "cluster", "place", "--model", "vgg19", "--width", "0.25",
            "--replicas", "4", "--profile-full", full,
            "--profile-factorized", fact, "--out", str(out_path),
        ])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"full", "factorized"}
        for placement in payload.values():
            assert placement["n_hosts"] >= 1
            assert placement["rejected"] == []

    def test_place_rejects_bad_replicas(self, capsys):
        rc = main(["cluster", "place", "--model", "vgg19", "--replicas", "0"])
        assert rc == 2
        assert "bad cluster configuration" in capsys.readouterr().err

    def test_autoscale_deterministic_digest(self, profiles, capsys):
        _, fact = profiles
        args = [
            "cluster", "autoscale", "--model", "vgg19", "--width", "0.25",
            "--phases", "200x20,500x20", "--latency-profile", fact,
            "--seed", "11",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "scale events" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        digest = [l for l in first.splitlines() if "timeline digest" in l]
        assert digest == [l for l in second.splitlines() if "timeline digest" in l]
        assert digest

    def test_autoscale_timeline_and_hosts(self, profiles, tmp_path, capsys):
        import json

        _, fact = profiles
        out_path = tmp_path / "timeline.json"
        rc = main([
            "cluster", "autoscale", "--model", "vgg19", "--width", "0.25",
            "--phases", "200x20,500x20", "--latency-profile", fact,
            "--host-mem-mb", "12", "--timeline", str(out_path),
        ])
        assert rc == 0
        assert "final fleet:" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"summary", "windows", "events"}
        assert payload["summary"]["n_windows"] == 4

    def test_autoscale_rejects_bad_phases(self, capsys):
        rc = main(["cluster", "autoscale", "--phases", "bogus"])
        assert rc == 2
        assert "bad cluster configuration" in capsys.readouterr().err

    def test_autoscale_rejects_bad_pool_bounds(self, profiles, capsys):
        _, fact = profiles
        rc = main([
            "cluster", "autoscale", "--model", "vgg19", "--width", "0.25",
            "--phases", "200x20", "--latency-profile", fact,
            "--initial-replicas", "0",
        ])
        assert rc == 2
        assert "bad cluster configuration" in capsys.readouterr().err

    def test_canary_promotes(self, profiles, capsys):
        full, fact = profiles
        rc = main([
            "cluster", "canary", "--model", "vgg19", "--width", "0.25",
            "--phases", "120x60", "--steps", "0.5,1.0",
            "--windows-per-step", "1", "--profile-full", full,
            "--profile-factorized", fact,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "status: promoted" in out
        assert "advance" in out

    def test_canary_rollback_exit_code(self, tmp_path, capsys):
        from repro.serve import LatencyProfile

        full = tmp_path / "full.json"
        slow = tmp_path / "slow.json"
        LatencyProfile(self.BATCHES, self.FULL_S).save(full)
        LatencyProfile(
            self.BATCHES, tuple(40 * t for t in self.FACT_S)
        ).save(slow)
        args = [
            "cluster", "canary", "--model", "vgg19", "--width", "0.25",
            "--phases", "120x60", "--steps", "0.5,1.0",
            "--windows-per-step", "1", "--profile-full", str(full),
            "--profile-factorized", str(slow),
        ]
        assert main(args) == 1
        assert "status: rolled_back" in capsys.readouterr().out
        assert main(args + ["--allow-rollback"]) == 0
        capsys.readouterr()

    def test_canary_rejects_bad_steps(self, capsys):
        rc = main(["cluster", "canary", "--steps", "a,b"])
        assert rc == 2
        assert "bad cluster configuration" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["cluster", "autoscale"])
        assert args.policy == "shed_rate"
        assert args.max_replicas == 8
        assert args.window == 10.0
        place = build_parser().parse_args(["cluster", "place"])
        assert place.host_mem_mb == 12.0
        assert place.placement == "ffd"

    def test_requires_cluster_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])


class TestGatewayCommand:
    """`repro gateway` — the live server + seeded load client, driven the
    way CI drives them: serve in the background, loadtest against it."""

    PINNED = "benchmarks/profiles/gateway_pinned.json"

    def _serve_in_thread(self, tmp_path, extra=()):
        import threading

        ready = tmp_path / "gateway.ready"
        rc_box = {}

        def target():
            rc_box["rc"] = main([
                "gateway", "serve", "--executor", "profile",
                "--latency-profile", self.PINNED, "--port", "0",
                "--ready-file", str(ready), "--duration", "3.0",
                "--slo-ms", "400", "--max-batch", "16", "--max-wait-ms", "30",
                *extra,
            ])

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert ready.exists(), "gateway never wrote its ready file"
        return thread, int(ready.read_text()), rc_box

    def test_serve_and_loadtest_roundtrip(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        out_path = tmp_path / "loadtest.json"
        thread, port, rc_box = self._serve_in_thread(
            tmp_path, extra=("--report", str(report_path))
        )
        rc = main([
            "gateway", "loadtest", "--port", str(port), "--rate", "60",
            "--duration", "1", "--seed", "0", "--out", str(out_path),
        ])
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert rc == 0 and rc_box["rc"] == 0
        out = capsys.readouterr().out
        assert "gateway listening on http://127.0.0.1:" in out
        assert "offered trace:" in out and "digest" in out
        assert "timeline digest:" in out
        client = json.loads(out_path.read_text())
        server = json.loads(report_path.read_text())
        assert client["summary"]["n_requests"] >= 1
        assert server["summary"]["n_requests"] == client["summary"]["n_requests"]

    def test_serve_profile_executor_requires_profile(self, capsys):
        rc = main(["gateway", "serve", "--executor", "profile"])
        assert rc == 2
        assert "requires --latency-profile" in capsys.readouterr().err

    def test_serve_bad_config_exits_2(self, capsys):
        rc = main([
            "gateway", "serve", "--executor", "profile",
            "--latency-profile", self.PINNED, "--slo-ms", "-1",
        ])
        assert rc == 2
        assert "bad gateway configuration" in capsys.readouterr().err

    def test_loadtest_bad_config_exits_2(self, capsys):
        rc = main(["gateway", "loadtest", "--port", "1", "--rate", "-3"])
        assert rc == 2
        assert "bad loadtest configuration" in capsys.readouterr().err

    def test_parser_defaults(self):
        serve = build_parser().parse_args(["gateway", "serve"])
        assert serve.executor == "model"
        assert serve.port == 8123
        assert serve.duration is None
        load = build_parser().parse_args(["gateway", "loadtest", "--port", "9"])
        assert load.mode == "open" and load.steps == 1
        assert load.arrival == "poisson"

    def test_requires_gateway_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gateway"])
