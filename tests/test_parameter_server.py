"""Parameter-server cost model, bandwidth traces, LTH-variant VGG."""

import pytest

from repro.distributed import (
    BandwidthTrace,
    ClusterSpec,
    effective_epoch_times,
    parameter_server_time,
    ring_allreduce_time,
)


class TestParameterServerModel:
    def test_single_node_free(self):
        assert parameter_server_time(1e9, ClusterSpec(1)) == 0.0

    def test_single_server_bottleneck_scales_with_workers(self):
        m = 10e6
        t4 = parameter_server_time(m, ClusterSpec(4, latency_s=0), num_servers=1)
        t16 = parameter_server_time(m, ClusterSpec(16, latency_s=0), num_servers=1)
        assert t16 / t4 == pytest.approx(4.0, rel=1e-6)

    def test_sharding_across_servers_helps(self):
        m = 10e6
        c = ClusterSpec(16, latency_s=0)
        t1 = parameter_server_time(m, c, num_servers=1)
        t4 = parameter_server_time(m, c, num_servers=4)
        assert t4 == pytest.approx(t1 / 4, rel=1e-6)

    def test_full_sharding_matches_allreduce_scaling(self):
        # s = p: per-server load 2M/B, same asymptote as ring allreduce.
        m = 100e6
        c = ClusterSpec(64, latency_s=0)
        ps = parameter_server_time(m, c, num_servers=64)
        ring = ring_allreduce_time(m, c)
        assert ps == pytest.approx(ring, rel=0.05)

    def test_invalid_servers_raise(self):
        with pytest.raises(ValueError):
            parameter_server_time(1e6, ClusterSpec(4), num_servers=0)


class TestBandwidthTrace:
    def test_constant_trace(self):
        tr = BandwidthTrace([(1.0, 10.0)])
        assert tr.bandwidth_at(0.0) == 10.0
        assert tr.bandwidth_at(1.0) == 10.0

    def test_appendix_k_decay(self):
        # "bandwidth decays sharply in the middle of the experiment".
        tr = BandwidthTrace([(0.4, 10.0), (0.6, 2.0)])
        assert tr.bandwidth_at(0.2) == 10.0
        assert tr.bandwidth_at(0.7) == 2.0

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            BandwidthTrace([(0.5, 10.0)])

    def test_positive_bandwidth_required(self):
        with pytest.raises(ValueError):
            BandwidthTrace([(1.0, 0.0)])

    def test_mean_inverse_bandwidth(self):
        tr = BandwidthTrace([(0.5, 10.0), (0.5, 5.0)])
        assert tr.mean_inverse_bandwidth() == pytest.approx(0.05 + 0.1)

    def test_progress_clamped(self):
        tr = BandwidthTrace([(1.0, 8.0)])
        assert tr.bandwidth_at(-1.0) == 8.0
        assert tr.bandwidth_at(2.0) == 8.0


class TestEffectiveEpochTimes:
    def test_decay_slows_later_epochs(self):
        tr = BandwidthTrace([(0.5, 10.0), (0.5, 2.0)])
        times = effective_epoch_times(
            comm_seconds_at_nominal=1.0, compute_seconds=2.0, n_epochs=10, trace=tr
        )
        assert len(times) == 10
        assert times[0] == pytest.approx(3.0)       # 10 Gbps epoch
        assert times[-1] == pytest.approx(2.0 + 5.0)  # 2 Gbps epoch
        assert times == sorted(times)

    def test_smaller_model_less_exposed_to_decay(self):
        """Pufferfish's robustness bonus: with less to communicate, a
        bandwidth collapse costs it less absolute slowdown."""
        tr = BandwidthTrace([(0.5, 10.0), (0.5, 1.0)])
        vanilla = effective_epoch_times(1.0, 2.0, 4, tr)
        pufferfish = effective_epoch_times(0.3, 1.8, 4, tr)
        penalty_vanilla = vanilla[-1] - vanilla[0]
        penalty_pufferfish = pufferfish[-1] - pufferfish[0]
        assert penalty_pufferfish < penalty_vanilla


class TestVGGLTHVariant:
    def test_single_fc_head(self):
        from repro import nn
        from repro.models import vgg19_lth

        model = vgg19_lth(num_classes=10, width_mult=0.25)
        fcs = [m for m in model.modules() if isinstance(m, nn.Linear)]
        assert len(fcs) == 1
        assert fcs[0].out_features == 10

    def test_forward(self, rng):
        from repro.models import vgg19_lth
        from repro.tensor import Tensor

        model = vgg19_lth(num_classes=4, width_mult=0.125)
        out = model(Tensor(rng.standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 4)

    def test_hybrid_config_keeps_head(self):
        from repro.core import build_hybrid
        from repro.models import vgg19_lth, vgg19_lth_hybrid_config

        model = vgg19_lth(num_classes=10, width_mult=0.25)
        hybrid, report = build_hybrid(model, vgg19_lth_hybrid_config())
        assert report.params_after < report.params_before
        assert "classifier.1" in report.kept

    def test_paper_scale_smaller_than_three_fc_vgg(self):
        from repro.models import vgg19, vgg19_lth

        assert vgg19_lth(10).num_parameters() < vgg19(10).num_parameters()
