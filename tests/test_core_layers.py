"""Low-rank layers: shapes, Table 1 parameter counts, gradients."""

import numpy as np
import pytest

from repro.core import LowRankConv2d, LowRankLinear, LowRankLSTM, LowRankLSTMLayer
from repro.metrics import (
    lowrank_conv_params,
    lowrank_fc_params,
    lowrank_lstm_params,
)
from repro.tensor import Tensor, check_gradients


class TestLowRankLinear:
    def test_forward_shape(self, rng):
        lr = LowRankLinear(10, 6, rank=3)
        assert lr(Tensor(rng.standard_normal((4, 10)))).shape == (4, 6)

    def test_param_count_table1(self):
        m, n, r = 20, 30, 5
        lr = LowRankLinear(n, m, rank=r, bias=False)
        assert lr.num_parameters() == lowrank_fc_params(m, n, r)

    def test_effective_weight_shape(self):
        lr = LowRankLinear(8, 5, rank=2)
        assert lr.effective_weight().shape == (5, 8)

    def test_forward_equals_effective_weight(self, rng):
        lr = LowRankLinear(6, 4, rank=2)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        out = lr(Tensor(x))
        assert np.allclose(out.data, x @ lr.effective_weight().T + lr.bias.data, atol=1e-5)

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            LowRankLinear(4, 4, rank=0)

    def test_gradcheck(self, rng):
        lr = LowRankLinear(5, 4, rank=2)
        x = Tensor(rng.standard_normal((3, 5)))
        check_gradients(lambda: (lr(x) ** 2).sum(), [lr.u, lr.vt, lr.bias])

    def test_3d_input(self, rng):
        lr = LowRankLinear(5, 4, rank=2)
        assert lr(Tensor(rng.standard_normal((2, 3, 5)))).shape == (2, 3, 4)


class TestLowRankConv2d:
    def test_forward_shape(self, rng):
        lr = LowRankConv2d(3, 8, 3, rank=2, stride=2, padding=1)
        out = lr(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_param_count_table1(self):
        c_in, c_out, k, r = 16, 32, 3, 4
        lr = LowRankConv2d(c_in, c_out, k, rank=r, bias=False)
        assert lr.num_parameters() == lowrank_conv_params(c_in, c_out, k, r)

    def test_structure_thin_then_1x1(self):
        lr = LowRankConv2d(4, 8, 3, rank=2)
        assert lr.conv_u.out_channels == 2 and lr.conv_u.kernel_size == 3
        assert lr.conv_v.in_channels == 2 and lr.conv_v.kernel_size == 1

    def test_bias_property(self):
        lr = LowRankConv2d(4, 8, 3, rank=2, bias=True)
        assert lr.bias is lr.conv_v.bias

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            LowRankConv2d(4, 8, 3, rank=0)

    def test_gradients_flow(self, rng):
        lr = LowRankConv2d(2, 4, 3, rank=2, padding=1)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)))
        lr(x).sum().backward()
        assert all(p.grad is not None for p in lr.parameters())


class TestLowRankLSTMLayer:
    def test_forward_shapes(self, rng):
        lr = LowRankLSTMLayer(6, 8, rank=2)
        out, (h, c) = lr(Tensor(rng.standard_normal((4, 3, 6))))
        assert out.shape == (4, 3, 8)
        assert h.shape == (3, 8)

    def test_param_count_table1(self):
        d, h, r = 10, 12, 3
        lr = LowRankLSTMLayer(d, h, rank=r)
        assert lr.num_parameters() == lowrank_lstm_params(d, h, r) + 8 * h

    def test_state_carry(self, rng):
        lr = LowRankLSTMLayer(4, 5, rank=2)
        x = rng.standard_normal((6, 2, 4)).astype(np.float32)
        full, _ = lr(Tensor(x))
        a, st = lr(Tensor(x[:3]))
        b, _ = lr(Tensor(x[3:]), st)
        assert np.allclose(full.data[:3], a.data, atol=1e-5)
        assert np.allclose(full.data[3:], b.data, atol=1e-5)

    def test_gradients_flow(self, rng):
        lr = LowRankLSTMLayer(3, 4, rank=2)
        out, _ = lr(Tensor(rng.standard_normal((3, 2, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in lr.parameters())

    def test_gradcheck(self, rng):
        lr = LowRankLSTMLayer(3, 3, rank=2)
        x = Tensor(rng.standard_normal((2, 2, 3)))
        check_gradients(
            lambda: (lr(x)[0] ** 2).sum(),
            [lr.u_ih, lr.vt_ih, lr.u_hh, lr.vt_hh],
            rtol=2e-2,
            atol=2e-3,
        )

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            LowRankLSTMLayer(4, 4, rank=0)


class TestLowRankLSTMStack:
    def test_two_layers(self, rng):
        lstm = LowRankLSTM(6, 8, rank=2, num_layers=2, dropout=0.0)
        out, states = lstm(Tensor(rng.standard_normal((4, 2, 6))))
        assert out.shape == (4, 2, 8)
        assert len(states) == 2

    def test_smaller_than_vanilla(self):
        from repro import nn

        vanilla = nn.LSTM(64, 64, num_layers=2)
        low = LowRankLSTM(64, 64, rank=16, num_layers=2)
        assert low.num_parameters() < vanilla.num_parameters()
