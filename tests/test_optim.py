"""Optimizers and LR schedules against closed-form single-step updates."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import (
    LAMB,
    SGD,
    Adam,
    LinearWarmup,
    MultiStepLR,
    ReduceLROnPlateau,
    StepDecayAt,
    clip_grad_norm,
)


def param_with_grad(value, grad):
    p = Parameter(np.array(value, dtype=np.float32))
    p.grad = np.array(grad, dtype=np.float32)
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = param_with_grad([1.0], [0.5])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = param_with_grad([0.0], [1.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # buf = 1 -> p = -1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf = 1.9 -> p = -2.9
        assert np.allclose(p.data, [-2.9], atol=1e-6)

    def test_weight_decay_applied(self):
        p = param_with_grad([1.0], [0.0])
        SGD([p], lr=0.1, weight_decay=0.1).step()
        assert np.allclose(p.data, [1.0 - 0.1 * 0.1])

    def test_no_decay_flag_respected(self):
        p = param_with_grad([1.0], [0.0])
        p.no_decay = True
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert np.allclose(p.data, [1.0])

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_nesterov_differs_from_heavy_ball(self):
        p1 = param_with_grad([0.0], [1.0])
        p2 = param_with_grad([0.0], [1.0])
        SGD([p1], lr=1.0, momentum=0.9).step()
        SGD([p2], lr=1.0, momentum=0.9, nesterov=True).step()
        assert not np.allclose(p1.data, p2.data)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rebind_drops_state(self):
        p = param_with_grad([0.0], [1.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()
        q = param_with_grad([0.0], [1.0])
        opt.rebind([q])
        assert opt.params == [q] and opt.state == {}


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, |Δ| of step 1 ≈ lr regardless of grad scale.
        p = param_with_grad([0.0], [1e-3])
        Adam([p], lr=0.01).step()
        assert np.abs(p.data[0]) == pytest.approx(0.01, rel=1e-2)

    def test_matches_reference_two_steps(self):
        p = param_with_grad([1.0], [0.1])
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        # Reference computation.
        m = v = 0.0
        theta = 1.0
        for t in (1, 2):
            g = 0.1
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            mh, vh = m / (1 - 0.9**t), v / (1 - 0.999**t)
            theta -= 0.1 * mh / (np.sqrt(vh) + 1e-8)
        opt.step()
        p.grad = np.array([0.1], dtype=np.float32)
        opt.step()
        assert np.allclose(p.data, [theta], atol=1e-5)

    def test_weight_decay(self):
        p = param_with_grad([1.0], [0.0])
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert p.data[0] < 1.0

    def test_in_place_step_matches_expression_chain(self):
        """The out=-form rewrite is bit-exact vs the naive expression
        chain (same per-element float32 operation order)."""
        rng = np.random.default_rng(0)
        shapes = [(17,), (5, 9), (3, 4, 2)]
        ps = [Parameter(rng.standard_normal(s).astype(np.float32)) for s in shapes]
        ps[1].no_decay = True
        opt = Adam(ps, lr=1e-3, weight_decay=1e-2)
        lr, (b1, b2), eps, wd = opt.lr, opt.betas, opt.eps, opt.weight_decay
        ref = {id(p): (p.data.copy(), np.zeros_like(p.data), np.zeros_like(p.data)) for p in ps}
        for t in range(1, 4):
            for p in ps:
                p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
            # Naive chain, exactly as the pre-rewrite loop computed it.
            for p in ps:
                w, m, v = ref[id(p)]
                g = p.grad
                if not getattr(p, "no_decay", False):
                    g = g + wd * w
                m *= b1
                m += (1 - b1) * g
                v *= b2
                v += (1 - b2) * g * g
                m_hat = m / (1 - b1**t)
                v_hat = v / (1 - b2**t)
                w -= lr * m_hat / (np.sqrt(v_hat) + eps)
            opt.step()
            for p in ps:
                assert np.array_equal(p.data, ref[id(p)][0])

    def test_step_allocates_no_new_state_after_first(self):
        p = param_with_grad([1.0, 2.0], [0.1, 0.2])
        opt = Adam([p], lr=0.1)
        opt.step()
        buffers = {k: id(v) for k, v in opt.state[id(p)].items() if isinstance(v, np.ndarray)}
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        opt.step()
        after = {k: id(v) for k, v in opt.state[id(p)].items() if isinstance(v, np.ndarray)}
        assert buffers == after


class TestLAMB:
    def test_trust_ratio_scales_update(self):
        # Same gradient, weights 10x apart -> updates 10x apart (per-layer
        # update magnitude tracks the weight magnitude).
        p_small = param_with_grad([0.1, 0.1], [1.0, 1.0])
        p_large = param_with_grad([1.0, 1.0], [1.0, 1.0])
        LAMB([p_small], lr=0.1).step()
        LAMB([p_large], lr=0.1).step()
        d_small = float(np.abs(0.1 - p_small.data[0]))
        d_large = float(np.abs(1.0 - p_large.data[0]))
        assert d_large == pytest.approx(10 * d_small, rel=1e-4)

    def test_first_step_magnitude_is_lr_times_weight_norm(self):
        # Step 1: u is elementwise ±1-ish (m̂/√v̂ = sign(g) up to eps), so
        # ‖Δw‖ ≈ lr·‖w‖ regardless of gradient scale.
        p = param_with_grad([3.0, 4.0], [1e-3, 1e-3])
        before = p.data.copy()
        LAMB([p], lr=0.01).step()
        assert np.linalg.norm(p.data - before) == pytest.approx(0.01 * 5.0, rel=1e-2)

    def test_zero_weight_falls_back_to_unit_ratio(self):
        p = param_with_grad([0.0], [1.0])
        LAMB([p], lr=0.01).step()
        # ratio 1.0: plain normalized-Adam step of size ~lr.
        assert np.abs(p.data[0]) == pytest.approx(0.01, rel=1e-2)

    def test_decoupled_weight_decay_enters_update_norm(self):
        p1 = param_with_grad([1.0], [0.0])
        p2 = param_with_grad([1.0], [0.0])
        LAMB([p1], lr=0.1, weight_decay=0.0).step()
        LAMB([p2], lr=0.1, weight_decay=1.0).step()
        assert np.abs(p2.data[0] - 1.0) > np.abs(p1.data[0] - 1.0)

    def test_no_decay_flag_respected(self):
        p = param_with_grad([1.0], [0.0])
        p.no_decay = True
        LAMB([p], lr=0.1, weight_decay=1.0).step()
        assert np.allclose(p.data, [1.0])

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        LAMB([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_minimizes_quadratic(self):
        w = Parameter(np.array([5.0], dtype=np.float32))
        # Trust ratio keeps |Δw| ≈ lr·|w| each step, so the residual floors
        # at that scale — small lr, more steps.
        opt = LAMB([w], lr=0.01)
        for _ in range(300):
            opt.zero_grad()
            ((w - 2.0) ** 2).sum().backward()
            opt.step()
        assert abs(w.data[0] - 2.0) < 5e-2


class TestClipGradNorm:
    def test_no_clip_below_bound(self):
        p = param_with_grad([0.0, 0.0], [0.3, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.5, rel=1e-5)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clips_to_bound(self):
        p = param_with_grad([0.0, 0.0], [3.0, 4.0])  # norm 5
        clip_grad_norm([p], 1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-3)

    def test_global_norm_across_params(self):
        a = param_with_grad([0.0], [3.0])
        b = param_with_grad([0.0], [4.0])
        norm = clip_grad_norm([a, b], 10.0)
        assert norm == pytest.approx(5.0, rel=1e-5)


class TestSchedulers:
    def _opt(self):
        return SGD([param_with_grad([0.0], [0.0])], lr=0.1)

    def test_multistep(self):
        opt = self._opt()
        sched = MultiStepLR(opt, milestones=[10, 20], gamma=0.1)
        sched.step(5)
        assert opt.lr == pytest.approx(0.1)
        sched.step(10)
        assert opt.lr == pytest.approx(0.01)
        sched.step(25)
        assert opt.lr == pytest.approx(0.001)

    def test_linear_warmup_then_inner(self):
        opt = self._opt()
        inner = MultiStepLR(opt, milestones=[10], gamma=0.1)
        sched = LinearWarmup(opt, start_lr=0.1, peak_lr=1.6, warmup_epochs=5, after=inner)
        sched.step(0)
        assert opt.lr == pytest.approx(0.1 + (1.6 - 0.1) / 5)
        sched.step(4)
        assert opt.lr == pytest.approx(1.6)
        sched.step(12)
        assert opt.lr == pytest.approx(0.16)

    def test_plateau_decays_on_stall(self):
        opt = self._opt()
        sched = ReduceLROnPlateau(opt, factor=0.25, patience=0)
        sched.step(0, metric=1.0)
        assert opt.lr == pytest.approx(0.1)
        sched.step(1, metric=1.0)  # no improvement
        assert opt.lr == pytest.approx(0.025)

    def test_plateau_resets_on_improvement(self):
        opt = self._opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched.step(0, metric=1.0)
        sched.step(1, metric=0.5)
        assert opt.lr == pytest.approx(0.1)

    def test_step_decay_at_fires_once(self):
        opt = self._opt()
        sched = StepDecayAt(opt, {3: 0.5})
        sched.step(2)
        assert opt.lr == pytest.approx(0.1)
        sched.step(3)
        sched.step(4)
        assert opt.lr == pytest.approx(0.05)


class TestOptimizerTraining:
    def test_sgd_minimizes_quadratic(self):

        w = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        assert abs(w.data[0]) < 1e-3

    def test_adam_minimizes_quadratic(self):
        w = Parameter(np.array([5.0], dtype=np.float32))
        opt = Adam([w], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            ((w - 2.0) ** 2).sum().backward()
            opt.step()
        assert abs(w.data[0] - 2.0) < 1e-2
