"""Fused functional primitives: softmax, log-softmax, cross-entropy, NLL,
embedding, dropout, one-hot."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    check_gradients,
    cross_entropy,
    dropout,
    embedding,
    log_softmax,
    nll_loss,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        s = softmax(Tensor(rng.standard_normal((4, 7))))
        assert np.allclose(s.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        assert np.allclose(softmax(Tensor(x)).data, softmax(Tensor(x + 100)).data, atol=1e-5)

    def test_extreme_logits_stable(self):
        s = softmax(Tensor(np.array([[1000.0, -1000.0]])))
        assert np.all(np.isfinite(s.data))
        assert np.allclose(s.data, [[1.0, 0.0]])

    def test_axis_argument(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)))
        assert np.allclose(softmax(x, axis=1).data.sum(axis=1), 1.0, atol=1e-5)

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 5)))
        check_gradients(lambda: (softmax(x) * w).sum(), [x])


class TestLogSoftmax:
    def test_equals_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data + 1e-12), atol=1e-4)

    def test_extreme_values_stable(self):
        out = log_softmax(Tensor(np.array([[500.0, -500.0]])))
        assert np.all(np.isfinite(out.data))

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 4)))
        check_gradients(lambda: (log_softmax(x) * w).sum(), [x])


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((5, 4)).astype(np.float32)
        targets = rng.integers(0, 4, 5)
        loss = cross_entropy(Tensor(logits), targets)
        logp = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        manual = -logp[np.arange(5), targets].mean()
        assert loss.item() == pytest.approx(manual, rel=1e-4)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = logits[1, 2] = 50.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-4

    def test_label_smoothing_increases_floor(self, rng):
        logits = np.full((2, 4), -30.0, dtype=np.float32)
        logits[:, 0] = 30.0
        t = np.zeros(2, dtype=int)
        plain = cross_entropy(Tensor(logits), t).item()
        smoothed = cross_entropy(Tensor(logits), t, label_smoothing=0.1).item()
        assert smoothed > plain

    def test_ignore_index_excludes_rows(self, rng):
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        t_all = np.array([0, 1, 2, 1])
        t_masked = np.array([0, 1, -1, -1])
        loss_masked = cross_entropy(Tensor(logits), t_masked, ignore_index=-1)
        loss_first_two = cross_entropy(Tensor(logits[:2]), t_all[:2])
        assert loss_masked.item() == pytest.approx(loss_first_two.item(), rel=1e-4)

    def test_gradcheck_plain(self, rng):
        logits = Tensor(rng.standard_normal((6, 5)), requires_grad=True)
        t = rng.integers(0, 5, 6)
        check_gradients(lambda: cross_entropy(logits, t), [logits])

    def test_gradcheck_smoothed(self, rng):
        logits = Tensor(rng.standard_normal((6, 5)), requires_grad=True)
        t = rng.integers(0, 5, 6)
        check_gradients(lambda: cross_entropy(logits, t, label_smoothing=0.2), [logits])

    def test_gradcheck_ignore_index(self, rng):
        logits = Tensor(rng.standard_normal((6, 5)), requires_grad=True)
        t = np.array([0, 1, -1, 3, -1, 2])
        check_gradients(lambda: cross_entropy(logits, t, ignore_index=-1), [logits])

    def test_grad_is_p_minus_y(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        t = np.array([1, 0, 2])
        cross_entropy(logits, t).backward()
        p = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        expected = p.copy()
        expected[np.arange(3), t] -= 1
        assert np.allclose(logits.grad, expected / 3, atol=1e-5)


class TestNLL:
    def test_matches_cross_entropy(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        t = rng.integers(0, 3, 4)
        ce = cross_entropy(logits, t).item()
        nll = nll_loss(log_softmax(logits), t).item()
        assert ce == pytest.approx(nll, rel=1e-4)

    def test_ignore_index(self, rng):
        lp = Tensor(np.log(np.full((3, 2), 0.5, dtype=np.float32)))
        t = np.array([0, 1, -1])
        loss = nll_loss(lp, t, ignore_index=-1)
        assert loss.item() == pytest.approx(np.log(2), rel=1e-4)

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        t = rng.integers(0, 3, 4)
        check_gradients(lambda: nll_loss(log_softmax(x), t), [x])


class TestEmbedding:
    def test_lookup(self, rng):
        w = Tensor(rng.standard_normal((10, 4)))
        idx = np.array([1, 3, 1])
        out = embedding(w, idx)
        assert np.allclose(out.data, w.data[idx])

    def test_2d_indices(self, rng):
        w = Tensor(rng.standard_normal((10, 4)))
        idx = rng.integers(0, 10, (3, 5))
        assert embedding(w, idx).shape == (3, 5, 4)

    def test_grad_scatter_adds_duplicates(self, rng):
        w = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
        embedding(w, np.array([0, 0, 3])).sum().backward()
        assert np.allclose(w.grad[0], [2, 2])
        assert np.allclose(w.grad[3], [1, 1])
        assert np.allclose(w.grad[1], [0, 0])

    def test_gradcheck(self, rng):
        w = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
        idx = np.array([[0, 2], [5, 2]])
        check_gradients(lambda: (embedding(w, idx) ** 2).sum(), [w])


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        out = dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_zero_p_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert dropout(x, 0.0, training=True, rng=rng) is x

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones((100, 100)))
        out = dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_zeros_fraction(self, rng):
        x = Tensor(np.ones(10000))
        out = dropout(x, 0.3, training=True, rng=rng)
        assert (out.data == 0).mean() == pytest.approx(0.3, abs=0.03)

    def test_grad_masked_like_forward(self, rng):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        assert np.allclose((x.grad == 0), (out.data == 0))


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_nd_shape(self):
        out = one_hot(np.zeros((2, 3), dtype=int), 4)
        assert out.shape == (2, 3, 4)
