"""Per-op parity of every non-reference backend against ``numpy``.

Each dispatched op carries a tag in :data:`repro.tensor.backend.PARITY`:
``bit-exact`` ops must return arrays equal under ``==`` to the reference
(``-0.0`` vs ``+0.0`` tolerated), ``tolerance`` ops must agree within the
published rtol/atol (GEMM orientation changes float summation order).
The same tags drive the parity column of ``benchmarks/test_kernels.py``.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, backend, bias_relu, col2im, conv2d, im2col
from repro.tensor.backend import (
    PARITY,
    TOLERANCE_ATOL,
    TOLERANCE_RTOL,
    FastBackend,
)

NON_REF = [n for n in backend.available() if n != "numpy"]

CONV_SHAPES = [
    # (n, c_in, h, w, c_out, k, stride, padding)
    (2, 3, 8, 8, 4, 3, 1, 1),
    (2, 3, 9, 9, 4, 3, 2, 1),
    (1, 2, 7, 5, 3, 3, 2, (2, 1)),
    (2, 4, 6, 6, 5, 1, 1, 0),  # 1×1 fast path
    (1, 3, 5, 5, 2, 5, 1, 2),
]


def assert_parity(op: str, ref: np.ndarray, got: np.ndarray) -> None:
    assert op in PARITY, f"op {op!r} missing a parity tag"
    if PARITY[op] == "bit-exact":
        assert np.array_equal(ref, got), f"{op}: bit-exact parity violated"
    else:
        np.testing.assert_allclose(got, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)


def run_conv(name, x_np, w_np, b_np, g_np, stride, padding):
    with backend.use(name):
        x = Tensor(x_np.copy(), requires_grad=True)
        w = Tensor(w_np.copy(), requires_grad=True)
        b = Tensor(b_np.copy(), requires_grad=True) if b_np is not None else None
        out = conv2d(x, w, b, stride=stride, padding=padding)
        out.backward(g_np)
        return out.data, x.grad, w.grad, None if b is None else b.grad


@pytest.mark.parametrize("name", NON_REF)
class TestOpParity:
    def test_matmul(self, name, rng):
        for a_shape, b_shape in [((5, 7), (7, 3)), ((2, 4, 6), (6, 5))]:
            a = rng.standard_normal(a_shape).astype(np.float32)
            b = rng.standard_normal(b_shape).astype(np.float32)
            ref = backend.get("numpy").matmul(a, b)
            got = backend.get(name).matmul(a, b)
            assert_parity("matmul", ref, got)

    def test_relu_forward_and_mask(self, name, rng):
        x = rng.standard_normal((64, 33)).astype(np.float32)
        x[0, :4] = [0.0, -0.0, 1.0, -1.0]  # signed-zero edge cases
        ref_out, ref_mask = backend.get("numpy").relu(x)
        got_out, got_mask = backend.get(name).relu(x)
        assert_parity("relu", ref_out, got_out)
        rm = ref_mask if ref_mask is not None else ref_out > 0
        gm = got_mask if got_mask is not None else got_out > 0
        assert np.array_equal(rm, gm), "relu backward masks diverge"

    def test_relu_grads(self, name, rng):
        x_np = rng.standard_normal((8, 5)).astype(np.float32)
        g_np = rng.standard_normal((8, 5)).astype(np.float32)
        grads = {}
        for b in ("numpy", name):
            with backend.use(b):
                x = Tensor(x_np.copy(), requires_grad=True)
                x.relu().backward(g_np)
                grads[b] = x.grad
        assert_parity("relu", grads["numpy"], grads[name])

    def test_bias_relu_matches_unfused(self, name, rng):
        x_np = rng.standard_normal((16, 9)).astype(np.float32)
        b_np = rng.standard_normal((9,)).astype(np.float32)
        g_np = rng.standard_normal((16, 9)).astype(np.float32)
        results = {}
        for b in ("numpy", name):
            with backend.use(b):
                x = Tensor(x_np.copy(), requires_grad=True)
                bias = Tensor(b_np.copy(), requires_grad=True)
                out = bias_relu(x, bias)
                out.backward(g_np)
                results[b] = (out.data, x.grad, bias.grad)
        for ref, got in zip(results["numpy"], results[name]):
            assert_parity("bias_relu", ref, got)
        # The fused node must also agree with the unfused add→relu chain.
        x = Tensor(x_np.copy(), requires_grad=True)
        bias = Tensor(b_np.copy(), requires_grad=True)
        unfused = (x + bias).relu()
        unfused.backward(g_np)
        assert np.array_equal(results["numpy"][0], unfused.data)
        assert np.array_equal(results["numpy"][1], x.grad)
        assert np.array_equal(results["numpy"][2], bias.grad)

    @pytest.mark.parametrize("k,stride,pad", [(3, 1, 1), (3, 2, (2, 1)), (1, 1, 0), (2, 2, 0)])
    def test_im2col(self, name, rng, k, stride, pad):
        x = rng.standard_normal((2, 3, 9, 8)).astype(np.float32)
        with backend.use("numpy"):
            ref = im2col(x, k, k, stride, pad)
        with backend.use(name):
            got = im2col(x, k, k, stride, pad)
        assert_parity("im2col", ref, got)

    @pytest.mark.parametrize("k,stride,pad", [(3, 1, 1), (3, 2, (2, 1)), (1, 1, 0)])
    def test_col2im(self, name, rng, k, stride, pad):
        x_shape = (2, 3, 9, 8)
        with backend.use("numpy"):
            cols = im2col(rng.standard_normal(x_shape).astype(np.float32), k, k, stride, pad)
            ref = col2im(cols, x_shape, k, k, stride, pad)
        with backend.use(name):
            got = col2im(cols, x_shape, k, k, stride, pad)
        assert_parity("col2im", ref, got)

    @pytest.mark.parametrize("shape", CONV_SHAPES)
    def test_conv2d_forward_backward(self, name, rng, shape):
        n, c_in, h, w, c_out, k, stride, padding = shape
        x_np = rng.standard_normal((n, c_in, h, w)).astype(np.float32)
        w_np = (rng.standard_normal((c_out, c_in, k, k)) * 0.1).astype(np.float32)
        b_np = rng.standard_normal((c_out,)).astype(np.float32)
        ph, pw = padding if isinstance(padding, tuple) else (padding, padding)
        oh = (h + 2 * ph - k) // stride + 1
        ow = (w + 2 * pw - k) // stride + 1
        g_np = rng.standard_normal((n, c_out, oh, ow)).astype(np.float32)

        ref = run_conv("numpy", x_np, w_np, b_np, g_np, stride, padding)
        got = run_conv(name, x_np, w_np, b_np, g_np, stride, padding)
        assert_parity("conv2d_forward", ref[0], got[0])
        for ref_g, got_g in zip(ref[1:], got[1:]):
            assert_parity("conv2d_backward", ref_g, got_g)

    @pytest.mark.parametrize("momentum,nesterov,decay", [
        (0.0, False, 0.0),
        (0.9, False, 5e-4),
        (0.9, True, 5e-4),
    ])
    def test_sgd_update(self, name, rng, momentum, nesterov, decay):
        size = 4096
        flat0 = rng.standard_normal(size).astype(np.float32)
        g0 = rng.standard_normal(size).astype(np.float32)
        buf0 = rng.standard_normal(size).astype(np.float32) if momentum else None
        mask = (rng.random(size) > 0.3).astype(np.float32) * decay if decay else None
        states = {}
        for b in ("numpy", name):
            flat, g = flat0.copy(), g0.copy()
            buf = None if buf0 is None else buf0.copy()
            tmp = np.empty(size, dtype=np.float32)
            buf = backend.get(b).sgd_update(flat, g, tmp, mask, buf, 0.05, momentum, nesterov)
            states[b] = (flat, buf)
        assert_parity("sgd_update", states["numpy"][0], states[name][0])
        if momentum:
            assert_parity("sgd_update", states["numpy"][1], states[name][1])

    @pytest.mark.parametrize("decay,step", [(0.0, 1), (1e-2, 1), (1e-2, 7)])
    def test_adam_update(self, name, rng, decay, step):
        size = 4096
        flat0 = rng.standard_normal(size).astype(np.float32)
        g0 = rng.standard_normal(size).astype(np.float32)
        m0 = (rng.standard_normal(size) * 0.1).astype(np.float32)
        v0 = (rng.random(size) * 0.01).astype(np.float32)
        mask = (rng.random(size) > 0.3).astype(np.float32) * decay if decay else None
        states = {}
        for b in ("numpy", name):
            flat, g, m, v = flat0.copy(), g0.copy(), m0.copy(), v0.copy()
            tmp = np.empty(size, dtype=np.float32)
            backend.get(b).adam_update(flat, g, m, v, tmp, mask, 1e-3, 0.9, 0.999, 1e-8, step)
            states[b] = (flat, m, v)
        for ref, got in zip(states["numpy"], states[name]):
            assert_parity("adam_update", ref, got)

    @pytest.mark.parametrize("decay,step", [(0.0, 1), (1e-2, 5)])
    def test_lamb_update(self, name, rng, decay, step):
        sizes = [7, 1, 640, 33, 2048, 5]
        starts = np.array([0, 7, 8, 648, 681, 2729], dtype=np.intp)
        size = int(sum(sizes))
        flat0 = rng.standard_normal(size).astype(np.float32)
        g0 = rng.standard_normal(size).astype(np.float32)
        m0 = (rng.standard_normal(size) * 0.1).astype(np.float32)
        v0 = (rng.random(size) * 0.01).astype(np.float32)
        mask = (rng.random(size) > 0.3).astype(np.float32) * decay if decay else None
        seg_sizes = np.asarray(sizes, dtype=np.intp)
        states = {}
        for b in ("numpy", name):
            flat, g, m, v = flat0.copy(), g0.copy(), m0.copy(), v0.copy()
            tmp = np.empty(size, dtype=np.float32)
            backend.get(b).lamb_update(
                flat, g, m, v, tmp, mask, starts, seg_sizes, 1e-3, 0.9, 0.999, 1e-6, step
            )
            states[b] = (flat, m, v)
        for ref, got in zip(states["numpy"], states[name]):
            assert_parity("lamb_update", ref, got)

    def test_segment_norms(self, name, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        starts = np.array([0, 3, 4, 500], dtype=np.intp)
        sizes = np.array([3, 1, 496, 500], dtype=np.intp)
        ref = backend.get("numpy").segment_norms(x, starts, sizes)
        got = backend.get(name).segment_norms(x, starts, sizes)
        np.testing.assert_allclose(got, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)


class TestParityContract:
    def test_every_dispatched_op_is_tagged(self):
        assert set(PARITY) == {
            "matmul",
            "relu",
            "bias_relu",
            "im2col",
            "col2im",
            "conv2d_forward",
            "conv2d_backward",
            "sgd_update",
            "adam_update",
            "lamb_update",
        }
        assert set(PARITY.values()) <= {"bit-exact", "tolerance"}

    def test_registry(self):
        assert "numpy" in backend.available()
        assert "fast" in backend.available()
        with pytest.raises(ValueError, match="unknown backend"):
            backend.get("does-not-exist")

    def test_use_restores_previous(self):
        prev = backend.active()
        with backend.use("fast") as be:
            assert be.name == "fast"
            assert backend.active() is be
            with backend.use("numpy"):
                assert backend.active().name == "numpy"
            assert backend.active().name == "fast"
        assert backend.active() is prev

    def test_use_restores_on_error(self):
        prev = backend.active()
        with pytest.raises(RuntimeError):
            with backend.use("fast"):
                raise RuntimeError("boom")
        assert backend.active() is prev

    def test_set_backend(self):
        prev = backend.active()
        try:
            assert backend.set_backend("fast").name == "fast"
            assert backend.active().name == "fast"
        finally:
            backend.set_backend(prev.name)


class TestThreadedGather:
    def test_threaded_conv_matches_serial(self, rng):
        """REPRO_BACKEND_THREADS gathering is per-sample-partitioned and
        must be bit-identical to the serial fast path."""
        serial = FastBackend(threads=0)
        threaded = FastBackend(threads=4)
        x = rng.standard_normal((8, 3, 10, 10)).astype(np.float32)
        w = rng.standard_normal((6, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal((6,)).astype(np.float32)
        out_s, ctx_s = serial.conv2d_forward(x, w, b, 1, 1, 1, True)
        out_t, ctx_t = threaded.conv2d_forward(x, w, b, 1, 1, 1, True)
        assert np.array_equal(out_s, out_t)
        g = rng.standard_normal(out_s.shape).astype(np.float32)
        for gs, gt in zip(
            serial.conv2d_backward(g, ctx_s, True, True, True),
            threaded.conv2d_backward(g, ctx_t, True, True, True),
        ):
            assert np.array_equal(gs, gt)
