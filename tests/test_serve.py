"""The serving subsystem: seeded load generation, dynamic batching,
SLO admission, latency profiles, and the discrete-event simulator.

The determinism tests pin the PR's acceptance criterion: a fixed seed
produces identical request timelines and shed decisions, run after run.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.serve import (
    SHED_ADMISSION,
    SHED_DEADLINE,
    AdmissionController,
    ArrivalSpec,
    BatchPolicy,
    DynamicBatcher,
    LatencyProfile,
    Request,
    ServeConfig,
    ServeSimulator,
    generate_arrivals,
)


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.get_registry().reset()


def flat_profile(service_s=0.01):
    """A profile whose per-batch latency is constant — simplest to reason
    about in the simulator tests."""
    return LatencyProfile(batch_sizes=(1, 8), latency_s=(service_s, service_s))


class TestLoadGenerator:
    def test_deterministic_for_fixed_seed(self):
        spec = ArrivalSpec(rate_rps=200, duration_s=3, seed=7)
        a = generate_arrivals(spec)
        b = generate_arrivals(spec)
        assert np.array_equal(a, b)
        assert len(a) > 0

    def test_sorted_and_bounded(self):
        a = generate_arrivals(ArrivalSpec(rate_rps=100, duration_s=2, seed=0))
        assert np.all(np.diff(a) >= 0)
        assert a.min() >= 0 and a.max() < 2.0

    def test_different_seeds_differ(self):
        s = lambda seed: generate_arrivals(ArrivalSpec(rate_rps=100, duration_s=2, seed=seed))
        assert not np.array_equal(s(0), s(1))

    def test_windows_independent_of_duration(self):
        """Counter-keyed draws: extending the run leaves the earlier
        windows' arrivals untouched (same guarantee as the fault
        injector's query-order independence)."""
        short = generate_arrivals(ArrivalSpec(rate_rps=150, duration_s=2, seed=3))
        long = generate_arrivals(ArrivalSpec(rate_rps=150, duration_s=4, seed=3))
        assert np.array_equal(short, long[: len(short)])

    def test_poisson_rate_approximately_matches(self):
        spec = ArrivalSpec(rate_rps=300, duration_s=20, seed=1)
        a = generate_arrivals(spec)
        assert len(a) / spec.duration_s == pytest.approx(300, rel=0.1)

    def test_bursty_mean_rate_normalized(self):
        spec = ArrivalSpec(rate_rps=300, duration_s=40, seed=2, process="bursty")
        a = generate_arrivals(spec)
        # Burst windows run hotter, but the *mean* offered rate matches.
        assert len(a) / spec.duration_s == pytest.approx(300, rel=0.15)
        assert spec.normal_rate_rps < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate_rps=0, duration_s=1)
        with pytest.raises(ValueError):
            ArrivalSpec(rate_rps=10, duration_s=-1)
        with pytest.raises(ValueError):
            ArrivalSpec(rate_rps=10, duration_s=1, process="adversarial")
        with pytest.raises(ValueError):
            ArrivalSpec(rate_rps=10, duration_s=1, burst_factor=0.5)


class TestDynamicBatcher:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1)

    def test_fill_then_take(self):
        b = DynamicBatcher(BatchPolicy(max_batch_size=3, max_wait_s=0.01))
        for i in range(3):
            assert not b.full
            b.enqueue(Request(i, 0.001 * i, 1.0))
        assert b.full and b.fill_time() == pytest.approx(0.002)
        batch = b.take()
        assert [r.rid for r in batch] == [0, 1, 2]
        assert len(b) == 0

    def test_flush_deadline_tracks_oldest(self):
        b = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_s=0.05))
        assert b.flush_at() == float("inf")
        b.enqueue(Request(0, 1.0, 2.0))
        b.enqueue(Request(1, 1.02, 2.0))
        assert b.flush_at() == pytest.approx(1.05)
        b.take()
        assert b.flush_at() == float("inf")

    def test_take_caps_at_max_batch(self):
        b = DynamicBatcher(BatchPolicy(max_batch_size=2, max_wait_s=0.01))
        for i in range(2):
            b.enqueue(Request(i, 0.0, 1.0))
        assert b.take() == [Request(0, 0.0, 1.0), Request(1, 0.0, 1.0)]

    def test_rejects_out_of_order_arrivals(self):
        b = DynamicBatcher(BatchPolicy())
        b.enqueue(Request(0, 1.0, 2.0))
        with pytest.raises(ValueError):
            b.enqueue(Request(1, 0.5, 2.0))


class TestAdmission:
    def test_admits_when_idle(self):
        ctl = AdmissionController(flat_profile(0.01), BatchPolicy(8, 0.005))
        d = ctl.assess(Request(0, 0.0, 0.1), queue_len=0, earliest_free_s=0.0)
        assert d.admitted and d.reason == "ok"
        assert d.est_completion_s == pytest.approx(0.01)

    def test_sheds_on_deep_queue(self):
        ctl = AdmissionController(flat_profile(0.05), BatchPolicy(1, 0.0))
        # 10 batches ahead at 50 ms each — a 100 ms deadline is hopeless.
        d = ctl.assess(Request(0, 0.0, 0.1), queue_len=10, earliest_free_s=0.0)
        assert not d.admitted and d.reason == SHED_ADMISSION

    def test_busy_replica_delays_start(self):
        ctl = AdmissionController(flat_profile(0.01), BatchPolicy(8, 0.005))
        d = ctl.assess(Request(0, 0.0, 0.1), queue_len=0, earliest_free_s=0.5)
        assert d.est_start_s == pytest.approx(0.5)
        assert not d.admitted


class TestLatencyProfile:
    def test_interpolation_and_extrapolation(self):
        p = LatencyProfile(batch_sizes=(1, 4, 8), latency_s=(0.01, 0.02, 0.03))
        assert p.latency(1) == pytest.approx(0.01)
        assert p.latency(2) == pytest.approx(0.01 + 0.01 / 3)
        assert p.latency(8) == pytest.approx(0.03)
        # Above the grid: marginal-slope extrapolation, never below last.
        assert p.latency(16) == pytest.approx(0.03 + (0.01 / 4) * 8)
        with pytest.raises(ValueError):
            p.latency(0)

    def test_capacity_is_best_throughput(self):
        p = LatencyProfile(batch_sizes=(1, 8), latency_s=(0.01, 0.02))
        assert p.best_batch() == 8
        assert p.capacity_rps() == pytest.approx(8 / 0.02)

    def test_json_round_trip(self, tmp_path):
        p = LatencyProfile(
            batch_sizes=(1, 2), latency_s=(0.001, 0.0015), meta=(("model", "mlp"),)
        )
        path = tmp_path / "prof.json"
        p.save(path)
        q = LatencyProfile.load(path)
        assert q == p

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyProfile(batch_sizes=(2, 1), latency_s=(0.1, 0.2))
        with pytest.raises(ValueError):
            LatencyProfile(batch_sizes=(1,), latency_s=(0.1, 0.2))
        with pytest.raises(ValueError):
            LatencyProfile(batch_sizes=(1, 2), latency_s=(0.1, -0.2))


class TestServeSimulator:
    def test_deterministic_timeline_and_digest(self):
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=400, duration_s=3, seed=0))
        cfg = ServeConfig(slo_s=0.05, policy=BatchPolicy(4, 0.005))
        r1 = ServeSimulator(flat_profile(0.01), cfg).run(arrivals)
        r2 = ServeSimulator(flat_profile(0.01), cfg).run(arrivals)
        assert r1.digest() == r2.digest()
        assert r1.summary() == r2.summary()
        assert r1.n_requests == len(arrivals)

    def test_light_load_nothing_shed(self):
        arrivals = [0.0, 0.2, 0.4, 0.6]
        cfg = ServeConfig(slo_s=0.1, policy=BatchPolicy(4, 0.01))
        report = ServeSimulator(flat_profile(0.005), cfg).run(arrivals)
        assert report.n_completed == 4 and report.n_shed == 0
        assert report.slo_miss_rate == 0.0
        # Each lone request waits out max_wait_s then rides a batch of 1.
        for o in report.outcomes:
            assert o.latency_s == pytest.approx(0.015)

    def test_full_batch_dispatches_before_wait_deadline(self):
        arrivals = [0.0, 0.001, 0.002, 0.003]
        cfg = ServeConfig(slo_s=0.1, policy=BatchPolicy(4, 0.05))
        report = ServeSimulator(flat_profile(0.01), cfg).run(arrivals)
        assert len(report.batches) == 1
        assert report.batches[0].dispatch_s == pytest.approx(0.003)
        assert report.batches[0].size == 4

    def test_hopeless_slo_sheds_at_admission(self):
        arrivals = [0.0, 0.1, 0.2]
        cfg = ServeConfig(slo_s=0.001, policy=BatchPolicy(4, 0.0))
        report = ServeSimulator(flat_profile(0.05), cfg).run(arrivals)
        assert report.n_shed == 3
        assert report.shed_by_reason()[SHED_ADMISSION] == 3
        assert report.n_batches == 0 if hasattr(report, "n_batches") else not report.batches

    def test_deadline_shed_when_wait_exceeds_slo(self):
        """Admission's estimate ignores the batcher's max_wait, so a lone
        request whose SLO is tighter than max_wait + service is admitted
        optimistically and then shed at dispatch — the second shed path."""
        cfg = ServeConfig(slo_s=0.015, policy=BatchPolicy(4, 0.02))
        report = ServeSimulator(flat_profile(0.01), cfg).run([0.0])
        assert report.shed_by_reason()[SHED_DEADLINE] == 1
        assert report.n_completed == 0

    def test_more_replicas_shed_less(self):
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=600, duration_s=3, seed=4))
        policy = BatchPolicy(4, 0.005)
        one = ServeSimulator(
            flat_profile(0.01), ServeConfig(slo_s=0.05, policy=policy, replicas=1)
        ).run(arrivals)
        four = ServeSimulator(
            flat_profile(0.01), ServeConfig(slo_s=0.05, policy=policy, replicas=4)
        ).run(arrivals)
        assert four.shed_rate < one.shed_rate
        assert four.throughput_rps > one.throughput_rps

    def test_faster_profile_higher_throughput_same_load(self):
        """The Pufferfish serving claim in miniature: a uniformly faster
        (factorized) profile sheds less and completes more under an
        offered load that saturates the slower (full-rank) profile."""
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=500, duration_s=4, seed=5))
        cfg = ServeConfig(slo_s=0.05, policy=BatchPolicy(4, 0.005))
        slow = ServeSimulator(flat_profile(0.012), cfg).run(arrivals)
        fast = ServeSimulator(flat_profile(0.008), cfg).run(arrivals)
        assert fast.throughput_rps > slow.throughput_rps
        assert fast.shed_rate < slow.shed_rate

    def test_quantiles_ordered_and_summary_keys(self):
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=300, duration_s=3, seed=6))
        cfg = ServeConfig(slo_s=0.08, policy=BatchPolicy(8, 0.01))
        s = ServeSimulator(flat_profile(0.01), cfg).run(arrivals).summary()
        assert s["p50_ms"] <= s["p95_ms"] <= s["p99_ms"]
        assert s["n_requests"] == s["n_completed"] + s["n_shed_admission"] + s["n_shed_deadline"]
        assert 0.0 <= s["shed_rate"] <= 1.0
        assert len(s["timeline_digest"]) == 16

    def test_rejects_unsorted_arrivals(self):
        cfg = ServeConfig(slo_s=0.1)
        with pytest.raises(ValueError):
            ServeSimulator(flat_profile(), cfg).run([0.2, 0.1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(slo_s=0.0)
        with pytest.raises(ValueError):
            ServeConfig(slo_s=0.1, replicas=0)

    def test_metrics_flow_through_registry(self):
        obs.enable_metrics()
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=400, duration_s=2, seed=8))
        cfg = ServeConfig(slo_s=0.03, policy=BatchPolicy(4, 0.005))
        report = ServeSimulator(flat_profile(0.012), cfg).run(arrivals)
        snap = obs.get_registry().snapshot()
        counters = snap["counters"]
        assert counters["serve.requests"] == report.n_requests
        assert counters["serve.completed"] == report.n_completed
        shed = report.shed_by_reason()
        for reason, n in shed.items():
            if n:
                assert counters[f"serve.shed{{reason={reason}}}"] == n
        assert snap["gauges"]["serve.shed_rate"] == pytest.approx(report.shed_rate)
        assert snap["gauges"]["serve.throughput_rps"] == pytest.approx(
            report.throughput_rps
        )
        assert "serve.latency_ms" in snap["histograms"]

    def test_pool_gauges_match_run_summary(self):
        """The live per-pool gauges are the autoscaler's input signal;
        at run end they must equal the report summary exactly — not a
        separate end-of-run accounting path."""
        obs.enable_metrics()
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=500, duration_s=2, seed=3))
        cfg = ServeConfig(slo_s=0.03, policy=BatchPolicy(4, 0.005), replicas=2)
        report = ServeSimulator(flat_profile(0.012), cfg, pool="edge").run(
            arrivals, duration_s=2.0
        )
        gauges = obs.get_registry().snapshot()["gauges"]
        assert gauges["serve.pool.shed_rate{pool=edge}"] == pytest.approx(
            report.shed_rate
        )
        assert gauges["serve.pool.utilization{pool=edge}"] == pytest.approx(
            report.utilization
        )
        assert gauges["serve.pool.replicas{pool=edge}"] == 2
        assert report.summary()["utilization"] == pytest.approx(
            report.utilization, abs=1e-6
        )
        assert 0.0 < report.utilization <= 1.0

    def test_pools_keep_separate_gauges(self):
        obs.enable_metrics()
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=200, duration_s=1, seed=3))
        cfg = ServeConfig(slo_s=0.05, policy=BatchPolicy(8, 0.005))
        ra = ServeSimulator(flat_profile(0.001), cfg, pool="a").run(arrivals, 1.0)
        rb = ServeSimulator(flat_profile(0.030), cfg, pool="b").run(arrivals, 1.0)
        gauges = obs.get_registry().snapshot()["gauges"]
        assert gauges["serve.pool.shed_rate{pool=a}"] == pytest.approx(ra.shed_rate)
        assert gauges["serve.pool.shed_rate{pool=b}"] == pytest.approx(rb.shed_rate)
        assert rb.shed_rate > ra.shed_rate


class TestInputSpecs:
    def test_image_spec_batch_shape(self):
        from repro.serve import InputSpec

        rng = np.random.default_rng(0)
        (x,) = InputSpec("image", (3, 8, 8)).example_batch(4, rng)
        assert x.data.shape == (4, 3, 8, 8)

    def test_token_spec_time_major(self):
        from repro.serve import InputSpec

        rng = np.random.default_rng(0)
        (tokens,) = InputSpec("tokens", (16,), vocab_size=50).example_batch(3, rng)
        assert tokens.shape == (16, 3)  # (T, B) — the LSTM convention
        assert tokens.min() >= 1 and tokens.max() < 50

    def test_seq2seq_spec_two_streams(self):
        from repro.serve import InputSpec

        rng = np.random.default_rng(0)
        src, tgt = InputSpec("seq2seq", (12,), vocab_size=50).example_batch(2, rng)
        assert src.shape == (2, 12) and tgt.shape == (2, 12)

    def test_validation(self):
        from repro.serve import InputSpec

        with pytest.raises(ValueError):
            InputSpec("video", (3, 8, 8))
        with pytest.raises(ValueError):
            InputSpec("tokens", (16,))  # vocab required
        with pytest.raises(ValueError):
            InputSpec("tokens", (16, 2), vocab_size=50)

    def test_round_trip(self):
        from repro.serve import InputSpec

        spec = InputSpec("tokens", (16,), vocab_size=50)
        assert InputSpec.from_dict(spec.to_dict()) == spec


class TestSequenceServing:
    """Satellite: the LSTM/Transformer zoo is servable end to end."""

    def test_registry_covers_sequence_models(self):
        from repro.serve import IMAGE_MODELS, SEQUENCE_MODELS, default_registry

        names = default_registry().names()
        for name in IMAGE_MODELS + SEQUENCE_MODELS:
            assert name in names

    @pytest.mark.parametrize("name", ["lstm", "transformer"])
    def test_sequence_model_materializes_both_variants(self, name):
        from repro.serve import default_registry

        registry = default_registry()
        full = registry.materialize(name, "full", width=0.25)
        fact = registry.materialize(name, "factorized", width=0.25, rank_ratio=0.25)
        assert fact.params < full.params
        assert full.input_spec.kind in ("tokens", "seq2seq")
        assert full.describe()["input"]["kind"] == full.input_spec.kind

    def test_lstm_latency_profile_measures(self):
        """A sequence model flows through the same profiling path the
        image zoo uses — the non-image input shapes satellite."""
        from repro.serve import default_registry, measure_latency_profile

        served = default_registry().materialize("lstm", "factorized", width=0.25)
        profile = measure_latency_profile(
            served.model,
            served.input_spec,
            batch_sizes=(1, 4),
            repeats=1,
            meta={"model": "lstm"},
        )
        assert profile.capacity_rps() > 0
        assert all(t > 0 for t in profile.latency_s)

    def test_lstm_serves_under_load(self):
        from repro.serve import default_registry, measure_latency_profile

        served = default_registry().materialize("lstm", "full", width=0.25)
        profile = measure_latency_profile(
            served.model, served.input_spec, batch_sizes=(1, 4), repeats=1
        )
        arrivals = generate_arrivals(ArrivalSpec(rate_rps=50, duration_s=1, seed=0))
        report = ServeSimulator(profile, ServeConfig(slo_s=10.0)).run(arrivals, 1.0)
        assert report.n_requests == len(arrivals)
        assert report.n_completed + report.n_shed == report.n_requests
