"""Metrics: MAC measurement vs Table 1 closed forms, accuracy, perplexity,
BLEU."""

import math

import numpy as np
import pytest

from repro import nn
from repro.core import LowRankConv2d, LowRankLinear
from repro.metrics import (
    accuracy,
    attention_params,
    conv_macs,
    conv_params,
    corpus_bleu,
    fc_macs,
    fc_params,
    ffn_params,
    lowrank_attention_params,
    lowrank_conv_macs,
    lowrank_conv_params,
    lowrank_fc_macs,
    lowrank_fc_params,
    lowrank_ffn_params,
    lowrank_lstm_params,
    lstm_params,
    measure_macs,
    perplexity,
    sentence_ngrams,
    topk_accuracy,
)
from repro.tensor import Tensor


class TestMeasuredMacs:
    def test_linear_matches_formula(self, rng):
        lin = nn.Linear(64, 32, bias=False)
        m = measure_macs(lin, Tensor(np.zeros((1, 64), dtype=np.float32)))
        assert m == fc_macs(32, 64)

    def test_lowrank_linear_matches_formula(self, rng):
        lr = LowRankLinear(64, 32, rank=8, bias=False)
        m = measure_macs(lr, Tensor(np.zeros((1, 64), dtype=np.float32)))
        assert m == lowrank_fc_macs(32, 64, 8)

    def test_conv_matches_formula(self):
        conv = nn.Conv2d(16, 32, 3, padding=1, bias=False)
        m = measure_macs(conv, Tensor(np.zeros((1, 16, 8, 8), dtype=np.float32)))
        assert m == conv_macs(16, 32, 3, 8, 8)

    def test_lowrank_conv_matches_formula(self):
        lr = LowRankConv2d(16, 32, 3, rank=4, padding=1, bias=False)
        m = measure_macs(lr, Tensor(np.zeros((1, 16, 8, 8), dtype=np.float32)))
        assert m == lowrank_conv_macs(16, 32, 3, 8, 8, 4)

    def test_batch_scales_macs(self):
        conv = nn.Conv2d(4, 8, 3, bias=False)
        m1 = measure_macs(conv, Tensor(np.zeros((1, 4, 8, 8), dtype=np.float32)))
        m2 = measure_macs(conv, Tensor(np.zeros((2, 4, 8, 8), dtype=np.float32)))
        assert m2 == 2 * m1

    def test_counter_inactive_outside_context(self):
        from repro.tensor.profiler import macs_active

        assert not macs_active()

    def test_nested_counting_isolated(self):
        from repro.tensor import count_macs

        lin = nn.Linear(8, 8, bias=False)
        x = Tensor(np.zeros((1, 8), dtype=np.float32))
        with count_macs() as outer:
            lin(x)
            with count_macs() as inner:
                lin(x)
        assert inner.total == fc_macs(8, 8)
        assert outer.total == fc_macs(8, 8)  # inner context shadows

    def test_paper_table4_macs(self):
        # VGG-19 on 32×32: paper reports 0.4 G vanilla, 0.29 G Pufferfish.
        from repro.core import build_hybrid
        from repro.models import vgg19, vgg19_hybrid_config

        v = vgg19(num_classes=10)
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert measure_macs(v, x) / 1e9 == pytest.approx(0.4, abs=0.01)
        h, _ = build_hybrid(v, vgg19_hybrid_config())
        assert measure_macs(h, x) / 1e9 == pytest.approx(0.29, abs=0.01)


class TestTable1Formulas:
    def test_fc(self):
        assert fc_params(100, 50) == 5000
        assert lowrank_fc_params(100, 50, 10) == 1500

    def test_conv(self):
        assert conv_params(16, 32, 3) == 4608
        assert lowrank_conv_params(16, 32, 3, 4) == 16 * 4 * 9 + 4 * 32

    def test_lstm(self):
        assert lstm_params(10, 20) == 4 * (200 + 400)
        assert lowrank_lstm_params(10, 20, 5) == 4 * 10 * 5 + 12 * 20 * 5

    def test_attention(self):
        p, d, r = 8, 64, 16
        assert attention_params(p, d) == 4 * p * p * d * d
        assert lowrank_attention_params(p, d, r) == (3 * p + 5) * p * r * d

    def test_ffn(self):
        p, d, r = 8, 64, 16
        assert ffn_params(p, d) == 8 * p * p * d * d
        assert lowrank_ffn_params(p, d, r) == 10 * p * d * r

    def test_lowrank_beats_vanilla_at_quarter_rank(self):
        # The headline claim of Table 1: r = full/4 shrinks every layer type.
        assert lowrank_fc_params(512, 512, 128) < fc_params(512, 512)
        assert lowrank_conv_params(512, 512, 3, 128) < conv_params(512, 512, 3)
        assert lowrank_lstm_params(1500, 1500, 375) < lstm_params(1500, 1500)
        # Per-head projections are pd×d, so quarter rank is d/4, not pd/4.
        assert lowrank_attention_params(8, 64, 16) < attention_params(8, 64)
        assert lowrank_ffn_params(8, 64, 128) < ffn_params(8, 64)


class TestAccuracy:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.3, 0.7]])
        assert accuracy(logits, np.array([1, 0, 0])) == pytest.approx(2 / 3)

    def test_top5_always_geq_top1(self, rng):
        logits = rng.standard_normal((50, 10))
        t = rng.integers(0, 10, 50)
        assert topk_accuracy(logits, t, 5) >= topk_accuracy(logits, t, 1)

    def test_topk_equals_one_when_k_is_num_classes(self, rng):
        logits = rng.standard_normal((20, 4))
        t = rng.integers(0, 4, 20)
        assert topk_accuracy(logits, t, 4) == 1.0

    def test_3d_logits_flattened(self, rng):
        logits = rng.standard_normal((2, 5, 4))
        t = rng.integers(0, 4, (2, 5))
        val = topk_accuracy(logits, t, 1)
        assert 0.0 <= val <= 1.0


class TestPerplexity:
    def test_exp_of_nll(self):
        assert perplexity(math.log(50)) == pytest.approx(50)

    def test_capped_on_overflow(self):
        assert perplexity(1e6) == 1e9

    def test_zero_loss_is_one(self):
        assert perplexity(0.0) == pytest.approx(1.0)


class TestBLEU:
    def test_perfect_match_scores_100(self):
        seqs = [[3, 4, 5, 6, 7], [8, 9, 10, 11]]
        assert corpus_bleu(seqs, seqs) == pytest.approx(100.0, abs=0.01)

    def test_disjoint_scores_near_zero(self):
        assert corpus_bleu([[3, 4, 5, 6]], [[7, 8, 9, 10]]) < 1.0

    def test_brevity_penalty(self):
        ref = [[3, 4, 5, 6, 7, 8]]
        short = [[3, 4, 5]]
        full = [[3, 4, 5, 6, 7, 8]]
        assert corpus_bleu(short, ref) < corpus_bleu(full, ref)

    def test_strip_ids_removes_special_tokens(self):
        hyp = [[1, 3, 4, 2, 0, 0]]
        ref = [[3, 4]]
        assert corpus_bleu(hyp, ref, strip_ids={0, 1, 2}) == pytest.approx(100.0, abs=0.01)

    def test_empty_hypothesis_zero(self):
        assert corpus_bleu([[]], [[3, 4]]) == 0.0

    def test_partial_overlap_intermediate(self):
        hyp = [[3, 4, 5, 9, 10, 11]]
        ref = [[3, 4, 5, 6, 7, 8]]
        score = corpus_bleu(hyp, ref)
        assert 0.0 < score < 100.0

    def test_sentence_ngrams(self):
        grams = sentence_ngrams([1, 2, 1, 2], 2)
        assert grams[(1, 2)] == 2
        assert grams[(2, 1)] == 1

    def test_in_range(self, rng):
        hyp = [list(rng.integers(3, 20, 8)) for _ in range(5)]
        ref = [list(rng.integers(3, 20, 8)) for _ in range(5)]
        assert 0.0 <= corpus_bleu(hyp, ref) <= 100.0
