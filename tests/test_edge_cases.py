"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    FactorizationConfig,
    LowRankConv2d,
    LowRankLinear,
    Trainer,
    build_hybrid,
    factorize_matrix,
)
from repro.data import DataLoader
from repro.distributed import ClusterSpec, ring_allreduce_time
from repro.nn.module import Parameter
from repro.optim import SGD
from repro.tensor import Tensor, cross_entropy


class TestTensorEdges:
    def test_zero_dim_scalar_ops(self):
        t = Tensor(np.array(2.0), requires_grad=True)
        (t * 3).backward()
        assert np.allclose(t.grad, 3.0)

    def test_empty_slice_forward(self):
        t = Tensor(np.arange(5.0))
        assert t[2:2].size == 0

    def test_single_element_reductions(self):
        t = Tensor(np.array([7.0]), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, [1.0])

    def test_very_deep_relu_chain_grads_flow(self):
        # ReLU of positive values: grad must survive 500 layers.
        t = Tensor(np.ones(4), requires_grad=True)
        y = t
        for _ in range(500):
            y = (y + 0.001).relu()
        y.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_concat_single_tensor(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = Tensor.concat([t], axis=0)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_division_by_small_values_finite_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1e-3]), requires_grad=True)
        (a / b).sum().backward()
        assert np.all(np.isfinite(a.grad)) and np.all(np.isfinite(b.grad))


class TestLayerEdges:
    def test_batchnorm_batch_of_one_trains(self, rng):
        # Variance of a single sample per channel position is 0 spatially
        # only if H*W == 1; with spatial extent it's still defined.
        bn = nn.BatchNorm2d(3)
        out = bn(Tensor(rng.standard_normal((1, 3, 4, 4))))
        assert np.all(np.isfinite(out.data))

    def test_layernorm_dim_one(self):
        ln = nn.LayerNorm(1)
        out = ln(Tensor(np.array([[2.0], [3.0]])))
        assert np.all(np.isfinite(out.data))

    def test_linear_one_in_one_out(self, rng):
        lin = nn.Linear(1, 1)
        out = lin(Tensor(rng.standard_normal((4, 1))))
        assert out.shape == (4, 1)

    def test_conv_kernel_equals_input_size(self, rng):
        conv = nn.Conv2d(2, 3, 4)  # valid conv collapsing to 1x1
        out = conv(Tensor(rng.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 3, 1, 1)

    def test_cross_entropy_single_class(self):
        logits = Tensor(np.zeros((3, 1), dtype=np.float32))
        loss = cross_entropy(logits, np.zeros(3, dtype=int))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_embedding_max_index(self, rng):
        emb = nn.Embedding(5, 3)
        out = emb(np.array([4, 4, 0]))
        assert out.shape == (3, 3)

    def test_lstm_sequence_length_one(self, rng):
        lstm = nn.LSTMLayer(3, 4)
        out, (h, c) = lstm(Tensor(rng.standard_normal((1, 2, 3))))
        assert out.shape == (1, 2, 4)

    def test_attention_single_token(self, rng):
        mha = nn.MultiHeadAttention(8, 2, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 1, 8)))
        assert mha(x, x, x).shape == (1, 1, 8)


class TestLowRankEdges:
    def test_rank_one_linear(self, rng):
        lr = LowRankLinear(8, 8, rank=1)
        out = lr(Tensor(rng.standard_normal((2, 8))))
        assert out.shape == (2, 8)
        eff = lr.effective_weight()
        s = np.linalg.svd(eff, compute_uv=False)
        assert (s[1:] < 1e-4 * max(s[0], 1)).all()  # truly rank 1

    def test_rank_one_conv(self, rng):
        lr = LowRankConv2d(4, 4, 3, rank=1, padding=1)
        out = lr(Tensor(rng.standard_normal((1, 4, 5, 5))))
        assert out.shape == (1, 4, 5, 5)

    def test_factorize_rank_one_matrix(self):
        w = np.outer(np.arange(1, 5, dtype=np.float32), np.arange(1, 4, dtype=np.float32))
        u, vt = factorize_matrix(w, 1)
        assert np.allclose(u @ vt, w, atol=1e-4)

    def test_factorize_zero_matrix(self):
        w = np.zeros((4, 3), dtype=np.float32)
        u, vt = factorize_matrix(w, 2)
        assert np.allclose(u @ vt, 0)

    def test_build_hybrid_no_factorizable_leaves(self):
        model = nn.Sequential(nn.ReLU(), nn.Dropout(0.1))
        hybrid, report = build_hybrid(model, FactorizationConfig())
        assert report.replaced == [] and report.kept == []
        assert report.params_after == report.params_before == 0

    def test_build_hybrid_single_linear_skipped_as_last_fc(self):
        model = nn.Sequential(nn.Linear(4, 2))
        hybrid, report = build_hybrid(model, FactorizationConfig(skip_last_fc=True))
        assert report.replaced == []

    def test_build_hybrid_idempotent_on_hybrid(self, rng):
        # Re-converting a hybrid must be a no-op: LowRank layers are not
        # factorizable leaves.
        model = nn.Sequential(nn.Linear(8, 8), nn.ReLU(), nn.Linear(8, 8), nn.ReLU(),
                              nn.Linear(8, 2))
        h1, r1 = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        h2, r2 = build_hybrid(h1, FactorizationConfig(rank_ratio=0.25))
        # Only still-vanilla leaves could be touched; the LowRank ones not.
        assert r2.params_after <= r1.params_after
        lowrank_paths_before = {p for p, m in h1.named_modules()
                                if isinstance(m, LowRankLinear)}
        lowrank_paths_after = {p for p, m in h2.named_modules()
                               if isinstance(m, LowRankLinear)}
        assert lowrank_paths_before <= lowrank_paths_after


class TestTrainingFailureInjection:
    def test_amp_skips_inf_loss_steps_and_recovers(self, rng):
        """Poison one batch to produce inf gradients: the AMP trainer must
        skip that step (weights unchanged) and keep training."""
        from repro.nn import GradScaler

        model = nn.Sequential(nn.Linear(4, 3))
        scaler = GradScaler(init_scale=2.0)
        p = model.get_submodule("0").weight
        before = p.data.copy()
        p.grad = np.full_like(p.data, np.inf)
        assert not scaler.unscale_and_check([p])
        assert np.allclose(p.data, before)
        # Next finite step proceeds.
        p.grad = np.ones_like(p.data)
        assert scaler.unscale_and_check([p])

    def test_trainer_with_empty_loader(self, rng):
        model = nn.Sequential(nn.Linear(4, 2))
        loader = DataLoader(np.zeros((0, 4), dtype=np.float32), np.zeros(0, dtype=int), 4)
        t = Trainer(model, SGD(model.parameters(), lr=0.1))
        loss, metric = t.evaluate(loader)
        assert loss == 0.0 and metric == 0.0

    def test_optimizer_handles_mixed_grad_presence(self, rng):
        a = Parameter(np.ones(2, dtype=np.float32))
        b = Parameter(np.ones(2, dtype=np.float32))
        a.grad = np.ones(2, dtype=np.float32)
        opt = SGD([a, b], lr=0.5, momentum=0.9)
        opt.step()
        assert np.allclose(b.data, 1.0)  # untouched
        assert np.allclose(a.data, 0.5)

    def test_clip_zero_gradients(self):
        from repro.optim import clip_grad_norm

        p = Parameter(np.zeros(3, dtype=np.float32))
        p.grad = np.zeros(3, dtype=np.float32)
        assert clip_grad_norm([p], 1.0) == 0.0


class TestDistributedEdges:
    def test_two_node_cluster(self):
        t = ring_allreduce_time(1e6, ClusterSpec(2))
        assert t > 0

    def test_zero_bytes_only_latency(self):
        c = ClusterSpec(4)
        assert ring_allreduce_time(0, c) == pytest.approx(2 * 3 * c.latency_s)

    def test_compressors_on_tiny_gradients(self, rng):
        from repro.compression import PowerSGD, QSGD, Signum, StochasticBinary, TopK

        g = [np.array([[0.5]], dtype=np.float32)]  # 1x1 matrix
        for comp in (PowerSGD(1, rank=4), Signum(1, momentum=0.0),
                     QSGD(1, levels=4), TopK(1, ratio=0.5), StochasticBinary(1)):
            agg = comp.decode_aggregate([comp.encode(0, [x.copy() for x in g])])
            assert agg[0].shape == (1, 1)
            assert np.all(np.isfinite(agg[0]))


class TestPruningEdges:
    def test_lth_prune_everything_but_floor(self, rng):
        from repro.pruning import global_magnitude_mask, sparsity

        model = nn.Sequential(nn.Linear(8, 8, bias=False))
        masks = global_magnitude_mask(model, 0.99)
        assert 0.9 < sparsity(masks) < 1.0

    def test_channel_mask_single_bn(self, rng):
        from repro.pruning import bn_channel_scores, channel_mask

        model = nn.Sequential(nn.Conv2d(3, 4, 3), nn.BatchNorm2d(4))
        bn = model.get_submodule("1")
        bn.weight.data = np.array([0.1, 5.0, 0.2, 4.0], dtype=np.float32)
        masks = channel_mask(bn_channel_scores(model), 0.5)
        assert masks["1"].sum() == 2

    def test_early_bird_before_any_update(self):
        from repro.pruning import EarlyBirdDetector

        det = EarlyBirdDetector(0.3)
        assert det.mask is None
        assert det.found_at is None
