"""Pruning baselines: LTH iterative magnitude pruning and Early-Bird
structured channel pruning."""

import numpy as np
import pytest

from repro import nn
from repro.models import resnet18, resnet50, vgg11
from repro.nn import BatchNorm2d
from repro.pruning import (
    EarlyBirdDetector,
    LTHRunner,
    apply_masks,
    bn_channel_scores,
    bn_l1_penalty_grad,
    channel_mask,
    global_magnitude_mask,
    mask_distance,
    prunable_weights,
    prune_resnet,
    prune_vgg,
    resnet_internal_bns,
    sparsity,
)
from repro.tensor import Tensor


def randomize_bn(model, rng):
    for mod in model.modules():
        if isinstance(mod, BatchNorm2d):
            scales = np.abs(rng.standard_normal(mod.num_features)) + 0.01
            mod.weight.data = scales.astype(np.float32)


class TestMagnitudeMasks:
    def test_prunable_weights_cover_conv_and_linear(self):
        m = vgg11(num_classes=4, width_mult=0.25)
        names = [n for n, _ in prunable_weights(m)]
        assert any("features" in n for n in names)
        assert any("classifier" in n for n in names)
        assert all(n.endswith(".weight") for n in names)

    def test_first_round_sparsity(self):
        m = vgg11(num_classes=4, width_mult=0.25)
        masks = global_magnitude_mask(m, 0.2)
        assert sparsity(masks) == pytest.approx(0.2, abs=0.01)

    def test_iterative_compounds(self):
        m = vgg11(num_classes=4, width_mult=0.25)
        masks = global_magnitude_mask(m, 0.2)
        masks = global_magnitude_mask(m, 0.2, masks)
        assert sparsity(masks) == pytest.approx(0.36, abs=0.01)

    def test_prunes_smallest_weights(self, rng):
        m = nn.Sequential(nn.Linear(10, 10, bias=False))
        m.get_submodule("0").weight.data = np.arange(100, dtype=np.float32).reshape(10, 10) + 1
        masks = global_magnitude_mask(m, 0.5)
        mask = masks["0.weight"]
        assert not mask.reshape(-1)[0]  # smallest pruned
        assert mask.reshape(-1)[-1]  # largest kept

    def test_apply_masks_zeroes_weights_and_grads(self, rng):
        m = nn.Sequential(nn.Linear(8, 8, bias=False))
        (m(Tensor(rng.standard_normal((2, 8)))) ** 2).sum().backward()
        masks = global_magnitude_mask(m, 0.5)
        apply_masks(m, masks)
        w = m.get_submodule("0").weight
        assert np.all(w.data[~masks["0.weight"]] == 0)
        assert np.all(w.grad[~masks["0.weight"]] == 0)

    def test_zero_fraction_is_noop(self):
        m = vgg11(num_classes=4, width_mult=0.25)
        masks = global_magnitude_mask(m, 0.0)
        assert sparsity(masks) == 0.0


class TestLTHRunner:
    def test_sparsity_schedule(self):
        runner = LTHRunner(
            lambda: vgg11(num_classes=4, width_mult=0.25),
            lambda model, post_step: 0.5,
            prune_fraction=0.2,
        )
        hist = runner.run(4)
        expected = [1 - 0.8 ** (i + 1) for i in range(4)]
        for h, e in zip(hist, expected):
            assert h.sparsity == pytest.approx(e, abs=0.01)

    def test_rewind_restores_initial_values(self):
        captured = {}

        def factory():
            m = vgg11(num_classes=4, width_mult=0.25)
            captured["theta0"] = m.state_dict()
            return m

        def train(model, post_step):
            # Simulate training drift.
            for p in model.parameters():
                p.data += 1.0
            post_step(model)
            return 0.0

        runner = LTHRunner(factory, train, prune_fraction=0.2)
        runner.run(2)
        final = runner.final_model.state_dict()
        masks = runner.final_masks
        for name, mask in masks.items():
            alive = final[name][mask]
            orig = captured["theta0"][name][mask]
            assert np.allclose(alive, orig)

    def test_cumulative_time_monotonic(self):
        runner = LTHRunner(
            lambda: vgg11(num_classes=4, width_mult=0.25),
            lambda m, ps: 0.0,
        )
        hist = runner.run(3)
        secs = [r.cumulative_seconds for r in hist]
        assert secs == sorted(secs)

    def test_remaining_params_decrease(self):
        runner = LTHRunner(
            lambda: vgg11(num_classes=4, width_mult=0.25),
            lambda m, ps: 0.0,
        )
        hist = runner.run(3)
        assert hist[0].remaining_params > hist[1].remaining_params > hist[2].remaining_params


class TestChannelMasks:
    def test_global_threshold(self, rng):
        m = vgg11(num_classes=4, width_mult=0.25)
        randomize_bn(m, rng)
        masks = channel_mask(bn_channel_scores(m), 0.3)
        total = sum(x.size for x in masks.values())
        kept = sum(int(x.sum()) for x in masks.values())
        assert kept / total == pytest.approx(0.7, abs=0.05)

    def test_no_layer_fully_pruned(self, rng):
        m = vgg11(num_classes=4, width_mult=0.25)
        for mod in m.modules():
            if isinstance(mod, BatchNorm2d):
                mod.weight.data[:] = 1e-6  # everything below threshold
        m.get_submodule("features.0").weight.data[:] = 1.0
        masks = channel_mask(bn_channel_scores(m), 0.9)
        assert all(mask.any() for mask in masks.values())

    def test_mask_distance_zero_for_identical(self, rng):
        m = vgg11(num_classes=4, width_mult=0.25)
        randomize_bn(m, rng)
        a = channel_mask(bn_channel_scores(m), 0.3)
        assert mask_distance(a, a) == 0.0

    def test_mask_distance_detects_changes(self, rng):
        m = vgg11(num_classes=4, width_mult=0.25)
        randomize_bn(m, rng)
        a = channel_mask(bn_channel_scores(m), 0.3)
        randomize_bn(m, rng)
        b = channel_mask(bn_channel_scores(m), 0.3)
        assert mask_distance(a, b) > 0


class TestEarlyBirdDetector:
    def test_triggers_on_stable_masks(self, rng):
        m = vgg11(num_classes=4, width_mult=0.25)
        randomize_bn(m, rng)
        det = EarlyBirdDetector(0.3, threshold=0.1, patience=2)
        found = [det.update(m, ep) for ep in range(4)]
        assert det.found_at is not None
        assert found[-1]

    def test_does_not_trigger_while_masks_move(self, rng):
        m = vgg11(num_classes=4, width_mult=0.25)
        det = EarlyBirdDetector(0.3, threshold=0.01, patience=3)
        for ep in range(4):
            randomize_bn(m, rng)  # masks churn every epoch
            assert not det.update(m, ep)

    def test_bn_l1_penalty_shrinks_gammas(self, rng):
        from repro.optim import SGD

        m = nn.Sequential(nn.Conv2d(3, 8, 3), nn.BatchNorm2d(8))
        bn = m.get_submodule("1")
        opt = SGD(list(m.parameters()), lr=0.1)
        before = np.abs(bn.weight.data).sum()
        for _ in range(5):
            opt.zero_grad()
            bn_l1_penalty_grad(m, coeff=0.1)
            opt.step()
        assert np.abs(bn.weight.data).sum() < before


class TestStructuralPruning:
    def test_vgg_slim_smaller_and_functional(self, rng):
        v = vgg11(num_classes=4, width_mult=0.5)
        randomize_bn(v, rng)
        masks = channel_mask(bn_channel_scores(v), 0.3)
        slim = prune_vgg(v, masks)
        slim.eval()
        out = slim(Tensor(rng.standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 4)
        assert slim.num_parameters() < v.num_parameters()

    def test_vgg_slim_preserves_function_when_nothing_pruned(self, rng):
        v = vgg11(num_classes=4, width_mult=0.25)
        masks = {p: np.ones_like(s, dtype=bool) for p, s in bn_channel_scores(v).items()}
        slim = prune_vgg(v, masks)
        v.eval(); slim.eval()
        x = Tensor(rng.standard_normal((2, 3, 32, 32)))
        assert np.allclose(v(x).data, slim(x).data, atol=1e-4)

    def test_resnet18_slim(self, rng):
        r = resnet18(num_classes=4, width_mult=0.25)
        randomize_bn(r, rng)
        masks = channel_mask(bn_channel_scores(r, resnet_internal_bns(r)), 0.4)
        slim = prune_resnet(r, masks)
        slim.eval()
        out = slim(Tensor(rng.standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 4)
        assert slim.num_parameters() < r.num_parameters()

    def test_resnet50_slim(self, rng):
        r = resnet50(num_classes=4, width_mult=0.125, small_input=True)
        randomize_bn(r, rng)
        masks = channel_mask(bn_channel_scores(r, resnet_internal_bns(r)), 0.3)
        slim = prune_resnet(r, masks)
        slim.eval()
        out = slim(Tensor(rng.standard_normal((1, 3, 32, 32))))
        assert out.shape == (1, 4)
        assert slim.num_parameters() < r.num_parameters()

    def test_resnet_slim_output_widths_unchanged(self, rng):
        # Residual joins require stage output widths to be preserved.
        r = resnet18(num_classes=4, width_mult=0.25)
        randomize_bn(r, rng)
        masks = channel_mask(bn_channel_scores(r, resnet_internal_bns(r)), 0.4)
        slim = prune_resnet(r, masks)
        assert slim.fc.in_features == r.fc.in_features

    def test_original_model_untouched_by_resnet_prune(self, rng):
        r = resnet18(num_classes=4, width_mult=0.25)
        randomize_bn(r, rng)
        before = r.num_parameters()
        masks = channel_mask(bn_channel_scores(r, resnet_internal_bns(r)), 0.4)
        prune_resnet(r, masks)
        assert r.num_parameters() == before
