"""Gradient compressors: exactness, unbiasedness, error feedback, wire
sizes, and allreduce compatibility flags."""

import numpy as np
import pytest

from repro.compression import (
    ABTraining,
    NoCompression,
    PowerSGD,
    QSGD,
    Signum,
    StochasticBinary,
    TopK,
    VarianceGated,
)


def grads_for(rng, shapes=((8, 6), (5,), (4, 3, 3, 3))):
    return [rng.standard_normal(s).astype(np.float32) for s in shapes]


class TestNoCompression:
    def test_exact_average(self, rng):
        comp = NoCompression(3)
        gsets = [grads_for(rng) for _ in range(3)]
        agg = comp.decode_aggregate([comp.encode(w, g) for w, g in enumerate(gsets)])
        for i in range(3):
            expected = np.mean([g[i] for g in gsets], axis=0)
            assert np.allclose(agg[i], expected, atol=1e-6)

    def test_wire_size_is_fp32(self, rng):
        comp = NoCompression(1)
        g = grads_for(rng)
        res = comp.encode(0, g)
        assert res.nbytes == sum(x.size for x in g) * 4

    def test_allreduce_compatible(self):
        assert NoCompression(2).allreduce_compatible


class TestPowerSGD:
    def test_wire_size_much_smaller(self, rng):
        comp = PowerSGD(2, rank=2)
        g = [rng.standard_normal((128, 128)).astype(np.float32)]
        res = comp.encode(0, g)
        assert res.nbytes < 0.1 * g[0].size * 4

    def test_rank1_tensors_sent_raw(self, rng):
        comp = PowerSGD(1, rank=2)
        g = [rng.standard_normal(7).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.allclose(agg[0], g[0], atol=1e-6)

    def test_exact_for_lowrank_gradient_after_warmup(self, rng):
        # A truly rank-2 gradient should be recovered (nearly) exactly once
        # the power iteration has aligned Q.
        comp = PowerSGD(1, rank=2, error_feedback=False)
        a = rng.standard_normal((16, 2)).astype(np.float32)
        b = rng.standard_normal((2, 12)).astype(np.float32)
        g = [a @ b]
        for _ in range(4):
            agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.linalg.norm(agg[0] - g[0]) / np.linalg.norm(g[0]) < 0.05

    def test_error_feedback_reduces_bias_over_rounds(self, rng):
        # With EF, the *sum* of decoded gradients over T rounds approaches
        # the sum of true gradients (memory compensates what was dropped).
        g_true = [rng.standard_normal((20, 20)).astype(np.float32)]
        comp = PowerSGD(1, rank=2, error_feedback=True)
        total = np.zeros_like(g_true[0])
        for _ in range(30):
            agg = comp.decode_aggregate([comp.encode(0, g_true)])
            total += agg[0]
        err = np.linalg.norm(total / 30 - g_true[0]) / np.linalg.norm(g_true[0])
        assert err < 0.25

    def test_shapes_restored_for_conv_grads(self, rng):
        comp = PowerSGD(1, rank=2)
        g = [rng.standard_normal((8, 4, 3, 3)).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert agg[0].shape == (8, 4, 3, 3)

    def test_allreduce_compatible(self):
        assert PowerSGD(2).allreduce_compatible


class TestSignum:
    def test_one_bit_per_coordinate(self, rng):
        comp = Signum(1)
        g = [rng.standard_normal(800).astype(np.float32)]
        res = comp.encode(0, g)
        assert res.nbytes == 100  # 800 bits

    def test_majority_vote(self):
        comp = Signum(3, momentum=0.0)
        mk = lambda v: [np.array(v, dtype=np.float32)]
        res = [
            comp.encode(0, mk([1.0, -1.0])),
            comp.encode(1, mk([1.0, 1.0])),
            comp.encode(2, mk([-1.0, -1.0])),
        ]
        agg = comp.decode_aggregate(res)
        assert np.allclose(agg[0], [1.0, -1.0])

    def test_momentum_smooths_sign(self):
        comp = Signum(1, momentum=0.9)
        g_pos = [np.array([10.0], dtype=np.float32)]
        g_neg = [np.array([-0.1], dtype=np.float32)]
        comp.decode_aggregate([comp.encode(0, g_pos)])
        agg = comp.decode_aggregate([comp.encode(0, g_neg)])
        # Momentum keeps the sign positive despite the small negative grad.
        assert agg[0][0] == 1.0

    def test_not_allreduce_compatible(self):
        assert not Signum(2).allreduce_compatible

    def test_output_values_are_signs(self, rng):
        comp = Signum(2)
        gsets = [grads_for(rng), grads_for(rng)]
        agg = comp.decode_aggregate([comp.encode(w, g) for w, g in enumerate(gsets)])
        for a in agg:
            assert set(np.unique(a)).issubset({-1.0, 0.0, 1.0})


class TestQSGD:
    def test_unbiased(self, rng):
        comp = QSGD(1, levels=8)
        g = [rng.standard_normal(500).astype(np.float32)]
        est = np.mean(
            [comp.decode_aggregate([comp.encode(0, g)])[0] for _ in range(300)], axis=0
        )
        noise_bound = np.linalg.norm(g[0]) / 8 / np.sqrt(300) * 5
        assert np.abs(est - g[0]).max() < noise_bound + 0.05

    def test_zero_gradient_roundtrip(self):
        comp = QSGD(1, levels=4)
        g = [np.zeros(10, dtype=np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.allclose(agg[0], 0)

    def test_invalid_levels_raise(self):
        with pytest.raises(ValueError):
            QSGD(1, levels=0)
        with pytest.raises(ValueError):
            QSGD(1, levels=1000)

    def test_wire_smaller_than_fp32(self, rng):
        comp = QSGD(1, levels=16)
        g = [rng.standard_normal(1000).astype(np.float32)]
        assert comp.encode(0, g).nbytes < 1000 * 4


class TestTopK:
    def test_keeps_exactly_k(self, rng):
        comp = TopK(1, ratio=0.05, error_feedback=False)
        g = [rng.standard_normal(1000).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert (agg[0] != 0).sum() == 50

    def test_keeps_largest_magnitudes(self, rng):
        comp = TopK(1, ratio=0.01, error_feedback=False)
        g = [np.arange(100, dtype=np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert agg[0][99] == 99

    def test_error_feedback_accumulates_residual(self):
        comp = TopK(1, ratio=0.5, error_feedback=True)
        g = [np.array([10.0, 1.0], dtype=np.float32)]
        comp.decode_aggregate([comp.encode(0, g)])  # keeps 10, residual has 1
        # Second round: residual (1) + new grad (1) = 2 competes with 10's 10.
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert agg[0][0] == 10.0  # still the larger coordinate

    def test_ef_sum_preserved_over_rounds(self, rng):
        # With EF and constant gradient, total transmitted mass approaches
        # total true mass.
        comp = TopK(1, ratio=0.25, error_feedback=True)
        g = [rng.standard_normal(64).astype(np.float32)]
        total = np.zeros(64, dtype=np.float64)
        for _ in range(40):
            total += comp.decode_aggregate([comp.encode(0, g)])[0]
        err = np.linalg.norm(total / 40 - g[0]) / np.linalg.norm(g[0])
        assert err < 0.2

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            TopK(1, ratio=0.0)

    def test_multi_tensor_shapes_restored(self, rng):
        comp = TopK(1, ratio=0.1)
        g = grads_for(rng)
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert [a.shape for a in agg] == [x.shape for x in g]


class TestStochasticBinary:
    def test_unbiased(self, rng):
        comp = StochasticBinary(1)
        g = [rng.standard_normal(200).astype(np.float32)]
        est = np.mean(
            [comp.decode_aggregate([comp.encode(0, g)])[0] for _ in range(400)], axis=0
        )
        spread = float(g[0].max() - g[0].min())
        assert np.abs(est - g[0]).max() < spread / np.sqrt(400) * 6

    def test_one_bit_plus_two_floats(self, rng):
        comp = StochasticBinary(1)
        g = [rng.standard_normal(800).astype(np.float32)]
        assert comp.encode(0, g).nbytes == 100 + 8

    def test_constant_tensor_exact(self):
        comp = StochasticBinary(1)
        g = [np.full(16, 3.0, dtype=np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.allclose(agg[0], 3.0)

    def test_values_within_minmax(self, rng):
        comp = StochasticBinary(1)
        g = [rng.standard_normal(64).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert agg[0].min() >= g[0].min() - 1e-5
        assert agg[0].max() <= g[0].max() + 1e-5

    def test_not_allreduce_compatible(self):
        assert not StochasticBinary(1).allreduce_compatible


class TestPowerSGDSeedDeterminism:
    """Regression: warm-start Q must be a pure function of (seed, layer),
    not of process-global RNG state or first-encode order."""

    def test_same_seed_reproduces_exactly(self, rng):
        g = [rng.standard_normal((12, 9)).astype(np.float32)]
        a = PowerSGD(1, rank=2, seed=7)
        b = PowerSGD(1, rank=2, seed=7)
        out_a = a.decode_aggregate([a.encode(0, g)])
        out_b = b.decode_aggregate([b.encode(0, g)])
        np.testing.assert_array_equal(out_a[0], out_b[0])

    def test_different_seeds_differ(self, rng):
        g = [rng.standard_normal((12, 9)).astype(np.float32)]
        a = PowerSGD(1, rank=2, seed=0)
        b = PowerSGD(1, rank=2, seed=1)
        assert not np.array_equal(
            a.encode(0, g).payload[0][0], b.encode(0, g).payload[0][0]
        )

    def test_encode_order_does_not_change_q(self, rng):
        # Layer 1 encoded first vs last: identical warm starts, because Q
        # is keyed on the global layer index, not on call order.
        grads = [
            rng.standard_normal((6, 5)).astype(np.float32),
            rng.standard_normal((4, 8)).astype(np.float32),
        ]
        forward = PowerSGD(1, rank=2, seed=3)
        forward.encode(0, grads)
        reverse = PowerSGD(1, rank=2, seed=3)
        reverse.encode(0, [grads[1]], layer_offset=1)
        reverse.encode(0, [grads[0]], layer_offset=0)
        for layer in (0, 1):
            np.testing.assert_array_equal(
                forward._qs[layer], reverse._qs[layer]
            )

    def test_immune_to_global_rng_consumption(self, rng):
        g = [rng.standard_normal((10, 10)).astype(np.float32)]
        a = PowerSGD(1, rank=2, seed=5)
        np.random.random(1000)  # perturb the legacy global RNG
        from repro.utils import spawn_rng

        spawn_rng().random(1000)  # and the library's own spawning stream
        b = PowerSGD(1, rank=2, seed=5)
        np.testing.assert_array_equal(
            a.encode(0, g).payload[0][0], b.encode(0, g).payload[0][0]
        )


class TestABTraining:
    def test_resync_step_is_exact_mean(self, rng):
        comp = ABTraining(3, rank=2, resync_every=4)
        gsets = [grads_for(rng) for _ in range(3)]
        agg = comp.decode_aggregate([comp.encode(w, g) for w, g in enumerate(gsets)])
        for i in range(len(gsets[0])):
            expected = np.mean([g[i] for g in gsets], axis=0)
            assert np.allclose(agg[i], expected, atol=1e-5)

    def test_factor_steps_send_rank_r_payloads(self, rng):
        comp = ABTraining(1, rank=2, resync_every=4)
        g = [rng.standard_normal((16, 12)).astype(np.float32)]
        full = comp.encode(0, g)
        comp.decode_aggregate([full])
        comp.advance_step()
        a_step = comp.encode(0, g)  # step 1: A-step
        # A-step wire: n x r floats, far below the full n x m matrix.
        assert a_step.nbytes == 16 * 2 * 4
        assert a_step.nbytes < full.nbytes
        comp.decode_aggregate([a_step])
        comp.advance_step()
        b_step = comp.encode(0, g)  # step 2: B-step
        assert b_step.nbytes == 2 * 12 * 4

    def test_schedule_alternates_and_resyncs(self):
        comp = ABTraining(1, rank=2, resync_every=4)
        modes = []
        for _ in range(8):
            modes.append(comp._mode())
            comp.advance_step()
        assert modes == ["resync", "a", "b", "a", "resync", "a", "b", "a"]

    def test_resync_flushes_error_feedback(self, rng):
        comp = ABTraining(1, rank=1, resync_every=2)
        g = [rng.standard_normal((8, 8)).astype(np.float32)]
        comp.decode_aggregate([comp.encode(0, g)])  # step 0: resync
        comp.advance_step()
        comp.decode_aggregate([comp.encode(0, g)])  # step 1: lossy A-step
        assert comp.error_norm(0) > 0.0
        comp.advance_step()
        comp.decode_aggregate([comp.encode(0, g)])  # step 2: resync again
        assert comp.error_norm(0) == 0.0

    def test_lowrank_gradient_recovered_on_factor_steps(self, rng):
        # After resync the bases span the gradient's own column space, so
        # a persistent rank-1 gradient survives the A/B projections.
        comp = ABTraining(1, rank=1, resync_every=4, error_feedback=False)
        u = rng.standard_normal((10, 1)).astype(np.float32)
        v = rng.standard_normal((1, 6)).astype(np.float32)
        g = [u @ v]
        comp.decode_aggregate([comp.encode(0, g)])
        comp.advance_step()
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.allclose(agg[0], g[0], atol=1e-4)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ABTraining(1, rank=0)
        with pytest.raises(ValueError):
            ABTraining(1, resync_every=1)

    def test_allreduce_compatible(self):
        assert ABTraining(2).allreduce_compatible


class TestVarianceGated:
    def test_first_step_sends_everything(self, rng):
        comp = VarianceGated(2, threshold=0.5)
        gsets = [grads_for(rng) for _ in range(2)]
        agg = comp.decode_aggregate([comp.encode(w, g) for w, g in enumerate(gsets)])
        for i in range(len(gsets[0])):
            expected = np.mean([g[i] for g in gsets], axis=0)
            assert np.allclose(agg[i], expected, atol=1e-5)

    def test_noisy_layer_gets_deferred_then_force_sent(self, rng):
        comp = VarianceGated(4, threshold=0.5, max_defer=2)
        shapes = ((6, 6),)

        def step():
            gsets = [grads_for(rng, shapes) for _ in range(4)]
            results = [comp.encode(w, g) for w, g in enumerate(gsets)]
            agg = comp.decode_aggregate(results)
            comp.advance_step()
            return results, agg

        step()  # step 0: no stats -> sent; iid noise -> high variance
        assert not comp.gate_open(0)
        results, agg = step()  # step 1: deferred
        assert results[0].nbytes == 1  # gate header only
        assert np.all(agg[0] == 0.0)
        assert comp.error_norm(0) > 0.0
        step()  # step 2: deferred again (hits max_defer)
        assert comp.gate_open(0)
        results, _ = step()  # step 3: force-sent, residual flushed
        assert results[0].nbytes == 1 + 36 * 4
        assert comp.error_norm(0) == 0.0

    def test_agreeing_workers_keep_gate_open(self, rng):
        comp = VarianceGated(3, threshold=0.5)
        base = grads_for(rng, ((5, 4),))
        for _ in range(3):
            # Near-identical gradients: relative variance ~ 0.
            gsets = [[g + 1e-4 * w for g in base] for w in range(3)]
            comp.decode_aggregate([comp.encode(w, g) for w, g in enumerate(gsets)])
            comp.advance_step()
            assert comp.gate_open(0)

    def test_deferred_gradients_accumulate_in_residual(self, rng):
        comp = VarianceGated(4, threshold=1e-9, max_defer=10)
        g = grads_for(rng, ((4, 4),))
        # Step 0 sends (no stats) and records high variance.
        comp.decode_aggregate(
            [comp.encode(w, grads_for(rng, ((4, 4),))) for w in range(4)]
        )
        comp.advance_step()
        comp.decode_aggregate([comp.encode(w, g) for w in range(4)])
        comp.advance_step()
        comp.decode_aggregate([comp.encode(w, g) for w in range(4)])
        expected = np.linalg.norm(2 * g[0].astype(np.float64))
        assert comp.error_norm(0) == pytest.approx(expected, rel=1e-5)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            VarianceGated(1, threshold=0.0)
        with pytest.raises(ValueError):
            VarianceGated(1, max_defer=0)

    def test_allreduce_compatible(self):
        assert VarianceGated(2).allreduce_compatible
