"""Conv edge cases exercised under every backend.

Each case is checked two ways: against a direct-loop reference (gold
standard for correctness) where practical, and parity-asserted between
the numpy reference backend and each alternative backend (the contract
`tests/test_backend_parity.py` establishes op-by-op, here at the edges:
stride>1 with asymmetric padding, the 1×1 fast path, non-contiguous
inputs, and empty batches).
"""

import numpy as np
import pytest

from repro.tensor import Tensor, backend, conv2d
from repro.tensor.backend import TOLERANCE_ATOL, TOLERANCE_RTOL

BACKENDS = backend.available()
NON_REF = [n for n in BACKENDS if n != "numpy"]


def naive_conv2d(x, w, b, stride, pad_h, pad_w):
    """Direct-loop reference convolution with per-axis padding."""
    n, c_in, h, wid = x.shape
    c_out, _, kh, kw = w.shape
    if pad_h or pad_w:
        x = np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out.astype(np.float32)


def run_conv(name, x_np, w_np, b_np, stride, padding, g_np=None):
    with backend.use(name):
        x = Tensor(x_np, requires_grad=True)
        w = Tensor(w_np.copy(), requires_grad=True)
        b = Tensor(b_np.copy(), requires_grad=True) if b_np is not None else None
        out = conv2d(x, w, b, stride=stride, padding=padding)
        if g_np is not None:
            out.backward(g_np)
        return out.data, x.grad, w.grad, None if b is None else b.grad


def assert_close(ref, got):
    np.testing.assert_allclose(got, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)


@pytest.mark.parametrize("name", BACKENDS)
class TestAsymmetricPadding:
    @pytest.mark.parametrize("stride,padding", [(2, (2, 1)), (2, (0, 2)), (3, (1, 0))])
    def test_matches_naive(self, name, rng, stride, padding):
        x = rng.standard_normal((2, 3, 11, 9)).astype(np.float32)
        w = (rng.standard_normal((4, 3, 3, 3)) * 0.2).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        ref = naive_conv2d(x, w, b, stride, *padding)
        out, *_ = run_conv(name, x, w, b, stride, padding)
        assert out.shape == ref.shape
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_int_padding_equals_symmetric_tuple(self, name, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        as_int, *_ = run_conv(name, x, w, None, 1, 1)
        as_tuple, *_ = run_conv(name, x, w, None, 1, (1, 1))
        assert np.array_equal(as_int, as_tuple)


@pytest.mark.parametrize("name", NON_REF)
class TestEdgeParity:
    def test_stride_asymmetric_padding_grads(self, name, rng):
        x = rng.standard_normal((2, 3, 11, 9)).astype(np.float32)
        w = (rng.standard_normal((4, 3, 3, 3)) * 0.2).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        ref_out = run_conv("numpy", x, w, b, 2, (2, 1))[0]
        g = rng.standard_normal(ref_out.shape).astype(np.float32)
        ref = run_conv("numpy", x, w, b, 2, (2, 1), g)
        got = run_conv(name, x, w, b, 2, (2, 1), g)
        for r, o in zip(ref, got):
            assert_close(r, o)

    def test_1x1_fast_path(self, name, rng):
        """k=1, s=1, p=0 — the Pufferfish factorized V-factor hot path —
        takes a dedicated branch in every backend."""
        x = rng.standard_normal((3, 5, 6, 7)).astype(np.float32)
        w = rng.standard_normal((4, 5, 1, 1)).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        ref = naive_conv2d(x, w, b, 1, 0, 0)
        g = rng.standard_normal(ref.shape).astype(np.float32)
        ref_all = run_conv("numpy", x, w, b, 1, 0, g)
        got_all = run_conv(name, x, w, b, 1, 0, g)
        np.testing.assert_allclose(got_all[0], ref, rtol=1e-4, atol=1e-4)
        for r, o in zip(ref_all, got_all):
            assert_close(r, o)

    def test_non_contiguous_input(self, name, rng):
        """Strided views (e.g. a spatially subsampled batch) must conv
        identically to their contiguous copies."""
        base = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        view = base[:, :, ::2, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        ref_out = run_conv("numpy", np.ascontiguousarray(view), w, b, 1, 1)[0]
        g = rng.standard_normal(ref_out.shape).astype(np.float32)
        ref = run_conv("numpy", np.ascontiguousarray(view), w, b, 1, 1, g)
        got = run_conv(name, view, w, b, 1, 1, g)
        for r, o in zip(ref, got):
            assert_close(r, o)

    def test_empty_batch(self, name, rng):
        """N=0 must produce an empty output and zero-shaped gradients,
        not crash inside the gather or GEMM."""
        x = np.empty((0, 3, 8, 8), dtype=np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        for be in ("numpy", name):
            out, gx, gw, gb = run_conv(
                be, x, w, b, 1, 1, np.empty((0, 4, 8, 8), dtype=np.float32)
            )
            assert out.shape == (0, 4, 8, 8)
            assert gx.shape == x.shape
            assert np.array_equal(gw, np.zeros_like(w))
            assert np.array_equal(gb, np.zeros_like(b))
