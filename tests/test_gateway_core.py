"""The sim/live seam: clock-agnostic core, batcher edges, decision parity.

The load-bearing guarantee of the gateway PR is that the simulator and
the live server make **bit-identical policy decisions on the same
injected timestamps** — a Hypothesis property drives random traces
through both the simulator's event loop and a gateway-style driver over
the shared :class:`ServingCore` and compares every request's fate.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability as obs
from repro.serve import (
    SHED_ADMISSION,
    SHED_DEADLINE,
    SHED_SHUTDOWN,
    BatchPolicy,
    DynamicBatcher,
    LatencyProfile,
    Request,
    ServeConfig,
    ServeSimulator,
    ServingCore,
)
from repro.gateway.validate import replay_decisions


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.get_registry().reset()


def profile(latencies=(0.01, 0.02, 0.03)):
    return LatencyProfile(batch_sizes=(1, 4, 8), latency_s=tuple(latencies))


class TestBatcherEdges:
    def test_empty_queue_flush_at_is_inf(self):
        b = DynamicBatcher(BatchPolicy(4, 0.01))
        assert b.flush_at() == math.inf
        assert len(b) == 0 and not b.full

    def test_empty_queue_take_returns_nothing(self):
        b = DynamicBatcher(BatchPolicy(4, 0.01))
        assert b.take() == []

    def test_fill_time_raises_until_full(self):
        b = DynamicBatcher(BatchPolicy(3, 0.01))
        b.enqueue(Request(0, 0.0, 1.0))
        b.enqueue(Request(1, 0.0, 1.0))
        with pytest.raises(ValueError):
            b.fill_time()
        b.enqueue(Request(2, 0.0, 1.0))
        assert b.full and b.fill_time() == 0.0

    def test_simultaneous_arrivals_at_max_batch_boundary(self):
        """max_batch requests arriving at the same instant fill exactly one
        batch; the (max_batch+1)-th starts the next with the same stamp."""
        b = DynamicBatcher(BatchPolicy(4, 0.01))
        t = 0.125
        for rid in range(5):
            b.enqueue(Request(rid, t, t + 1.0))
        assert b.full
        assert b.fill_time() == t  # arrival of the 4th member, not the 5th
        first = b.take()
        assert [r.rid for r in first] == [0, 1, 2, 3]
        assert len(b) == 1 and not b.full
        assert b.flush_at() == t + 0.01

    def test_out_of_order_enqueue_rejected(self):
        b = DynamicBatcher(BatchPolicy(4, 0.01))
        b.enqueue(Request(0, 1.0, 2.0))
        with pytest.raises(ValueError):
            b.enqueue(Request(1, 0.5, 1.5))
        b.enqueue(Request(2, 1.0, 2.0))  # ties are fine


class TestServingCore:
    def cfg(self, **kw):
        kw.setdefault("slo_s", 0.1)
        kw.setdefault("policy", BatchPolicy(4, 0.01))
        return ServeConfig(**kw)

    def test_dispatch_due_none_on_empty(self):
        core = ServingCore(profile(), self.cfg())
        assert core.dispatch_due(0.0) is None

    def test_dispatch_due_full_vs_flush(self):
        core = ServingCore(profile(), self.cfg())
        for rid in range(3):
            core.offer(Request(rid, 0.0, 1.0), earliest_free_s=0.0)
        # Partial batch: due at the head's flush deadline.
        assert core.dispatch_due(0.0) == pytest.approx(0.01)
        core.offer(Request(3, 0.005, 1.005), earliest_free_s=0.0)
        # Full batch: due the instant the last member arrived.
        assert core.dispatch_due(0.0) == pytest.approx(0.005)
        # ...but never before a replica frees up.
        assert core.dispatch_due(0.02) == pytest.approx(0.02)

    def test_cut_batch_splits_expired(self):
        core = ServingCore(profile(), self.cfg(slo_s=0.05))
        core.offer(Request(0, 0.0, 0.05), earliest_free_s=0.0)
        core.offer(Request(1, 0.04, 0.09), earliest_free_s=0.0)
        live, expired = core.cut_batch(dispatch_s=0.06)
        assert [r.rid for r in live] == [1]
        assert [r.rid for r in expired] == [0]
        assert core.shed_counts == {SHED_DEADLINE: 1}

    def test_admission_shed_accounted(self):
        core = ServingCore(profile(), self.cfg(slo_s=0.015))
        # Replica busy far beyond the deadline: cannot possibly make it.
        decision = core.offer(Request(0, 0.0, 0.015), earliest_free_s=10.0)
        assert not decision.admitted
        assert core.n_seen == 1 and core.n_shed == 1
        assert core.shed_counts == {SHED_ADMISSION: 1}
        assert core.queue_depth == 0

    def test_shed_queue_drains_with_reason(self):
        core = ServingCore(profile(), self.cfg())
        for rid in range(6):
            core.offer(Request(rid, 0.0, 1.0), earliest_free_s=0.0)
        shed = core.shed_queue(SHED_SHUTDOWN)
        assert [r.rid for r in shed] == list(range(6))
        assert core.queue_depth == 0
        assert core.shed_counts == {SHED_SHUTDOWN: 6}


class TestReportShedReasons:
    def test_shed_by_reason_tolerates_shutdown(self):
        from repro.serve.simulator import RequestOutcome, ServeReport

        report = ServeReport(
            duration_s=1.0,
            slo_s=0.1,
            outcomes=[
                RequestOutcome(0, 0.0, "shed_admission"),
                RequestOutcome(1, 0.1, "shed_shutdown"),
                RequestOutcome(2, 0.2, "shed_shutdown"),
            ],
            batches=[],
            queue_depths=[],
        )
        shed = report.shed_by_reason()
        assert shed == {"admission": 1, "deadline": 0, "shutdown": 2}
        summary = report.summary()
        assert summary["n_shed_shutdown"] == 2

    def test_sim_summary_has_no_extra_shed_keys(self):
        """Simulator runs never produce non-standard reasons, so their
        summaries keep the exact key set the committed baselines pin."""
        prof = LatencyProfile((1, 8), (0.01, 0.01))
        report = ServeSimulator(prof, ServeConfig(slo_s=0.05)).run([0.0, 0.001, 0.002])
        assert set(k for k in report.summary() if k.startswith("n_shed_")) == {
            "n_shed_admission",
            "n_shed_deadline",
        }


# -- the seam property ---------------------------------------------------

gaps = st.lists(st.floats(min_value=0.0, max_value=0.05), min_size=0, max_size=60)
latency_steps = st.tuples(
    st.floats(min_value=0.001, max_value=0.02),
    st.floats(min_value=0.0, max_value=0.02),
    st.floats(min_value=0.0, max_value=0.02),
)


class TestDecisionParity:
    @given(
        gaps=gaps,
        lat=latency_steps,
        slo=st.floats(min_value=0.005, max_value=0.3),
        max_batch=st.integers(min_value=1, max_value=8),
        max_wait=st.floats(min_value=0.0, max_value=0.03),
        replicas=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_gateway_path_bit_identical_to_simulator(
        self, gaps, lat, slo, max_batch, max_wait, replicas
    ):
        """The gateway-style driver (offer / dispatch_due / cut_batch over a
        busy-until list) and the simulator's event loop must agree on every
        request's fate given the same injected timestamps."""
        arrivals = []
        t = 0.0
        for g in gaps:
            t += g
            arrivals.append(t)
        prof = LatencyProfile(
            batch_sizes=(1, 4, 8),
            latency_s=(lat[0], lat[0] + lat[1], lat[0] + lat[1] + lat[2] + 1e-6),
        )
        config = ServeConfig(
            slo_s=slo, policy=BatchPolicy(max_batch, max_wait), replicas=replicas
        )
        sim_report = ServeSimulator(prof, config).run(arrivals)
        sim_statuses = [o.status for o in sim_report.outcomes]
        assert replay_decisions(prof, config, arrivals) == sim_statuses

    def test_parity_on_seeded_trace(self):
        """The committed twin scenario's trace, end to end."""
        from repro.gateway.client import build_trace
        from repro.serve import ArrivalSpec

        spec = ArrivalSpec(
            rate_rps=90,
            duration_s=4.0,
            process="bursty",
            seed=11,
            burst_factor=5.0,
            burst_prob=0.2,
            window_s=0.5,
        )
        prof = LatencyProfile((1, 4, 8, 16), (0.04, 0.06, 0.08, 0.12))
        config = ServeConfig(slo_s=0.4, policy=BatchPolicy(16, 0.03), replicas=1)
        trace = build_trace(spec)
        arrivals = [tr.at_s for tr in trace]
        sim_report = ServeSimulator(prof, config).run(arrivals)
        assert replay_decisions(prof, config, arrivals) == [
            o.status for o in sim_report.outcomes
        ]
        assert sim_report.shed_rate > 0.1  # the scenario genuinely sheds
