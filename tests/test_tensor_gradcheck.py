"""Finite-difference validation of every analytic backward pass."""

import numpy as np

from repro.tensor import Tensor, check_gradients


def make(shape, rng, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestElementwiseGrads:
    def test_add_sub(self, rng):
        a, b = make((3, 4), rng), make((3, 4), rng)
        check_gradients(lambda: (a + b - a * 0.5).sum(), [a, b])

    def test_mul(self, rng):
        a, b = make((3, 4), rng), make((3, 4), rng)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = make((3,), rng)
        b = Tensor(rng.standard_normal(3) + 5.0, requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.standard_normal(4)) + 0.5, requires_grad=True)
        check_gradients(lambda: (a**3).sum(), [a])

    def test_exp(self, rng):
        a = make((4,), rng, 0.5)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(np.abs(rng.standard_normal(4)) + 1.0, requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(np.abs(rng.standard_normal(4)) + 1.0, requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_tanh(self, rng):
        a = make((5,), rng)
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self, rng):
        a = make((5,), rng)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_relu_away_from_kink(self, rng):
        a = Tensor(rng.standard_normal(20) + np.where(rng.random(20) > 0.5, 2.0, -2.0),
                   requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_maximum(self, rng):
        a = make((6,), rng, 3.0)
        b = make((6,), rng, 3.0)
        check_gradients(lambda: (a.maximum(b) * 2).sum(), [a, b], max_bad_frac=0.2)

    def test_abs_away_from_zero(self, rng):
        a = Tensor(rng.standard_normal(10) + np.sign(rng.standard_normal(10)) * 2,
                   requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])


class TestReductionGrads:
    def test_sum_axis(self, rng):
        a = make((3, 4), rng)
        check_gradients(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_mean_axis_keepdims(self, rng):
        a = make((3, 4), rng)
        check_gradients(lambda: (a.mean(axis=1, keepdims=True) * a).sum(), [a])

    def test_var(self, rng):
        a = make((8,), rng)
        check_gradients(lambda: a.var().sum(), [a])

    def test_max_axis(self, rng):
        a = Tensor(rng.permutation(12).astype(np.float32).reshape(3, 4), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])


class TestShapeGrads:
    def test_reshape_transpose_chain(self, rng):
        a = make((2, 3, 4), rng)
        check_gradients(lambda: (a.reshape(6, 4).T @ a.reshape(6, 4)).sum(), [a])

    def test_getitem(self, rng):
        a = make((5, 3), rng)
        check_gradients(lambda: (a[1:4] * 2).sum(), [a])

    def test_concat(self, rng):
        a, b = make((2, 3), rng), make((4, 3), rng)
        check_gradients(lambda: (Tensor.concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_pad(self, rng):
        a = make((3, 3), rng)
        check_gradients(lambda: (a.pad(((1, 0), (0, 2))) ** 2).sum(), [a])


class TestMatmulGrads:
    def test_2d(self, rng):
        a, b = make((3, 4), rng), make((4, 5), rng)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_chain(self, rng):
        a, b, c = make((2, 3), rng), make((3, 4), rng), make((4, 2), rng)
        check_gradients(lambda: ((a @ b) @ c).sum(), [a, b, c])

    def test_batched(self, rng):
        a, b = make((2, 3, 4), rng), make((2, 4, 3), rng)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched_with_broadcast_rhs(self, rng):
        a, b = make((2, 3, 4), rng), make((4, 5), rng)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_nonuniform_output_grad(self, rng):
        a, b = make((3, 4), rng), make((4, 5), rng)
        w = Tensor(rng.standard_normal((3, 5)))
        check_gradients(lambda: ((a @ b) * w).sum(), [a, b])
