"""Flat parameter arena + fused SGD: aliasing and bit-exactness vs the
per-tensor loop."""

import numpy as np
import pytest

from repro import nn
from repro.models import MLP
from repro.nn import ParameterArena
from repro.optim import SGD, FusedSGD
from repro.tensor import Tensor
from repro.utils import set_seed


def small_model(seed=0):
    set_seed(seed)
    return MLP(12, [10, 8], 4)


def conv_model(seed=0):
    set_seed(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),
    )


def fill_grads(model, seed):
    rng = np.random.default_rng(seed)
    for p in model.parameters():
        p.grad = rng.standard_normal(p.data.shape).astype(np.float32)


class TestParameterArena:
    def test_views_alias_flat_buffer(self):
        model = small_model()
        params = list(model.parameters())
        before = [p.data.copy() for p in params]
        arena = ParameterArena(params)
        # Values preserved, every p.data now a view of the flat buffer.
        for p, old in zip(params, before):
            assert np.array_equal(p.data, old)
            assert p.data.base is arena.flat
        assert arena.intact()
        # Mutating the flat buffer mutates the parameters (no scatter).
        arena.flat += 1.0
        for p, old in zip(params, before):
            assert np.allclose(p.data, old + 1.0)

    def test_forward_backward_through_views(self):
        model = small_model()
        ParameterArena(list(model.parameters()))
        x = Tensor(np.random.default_rng(0).standard_normal((5, 12)).astype(np.float32))
        loss = model(x).sum()
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_gather_and_scatter_grad(self):
        model = small_model()
        params = list(model.parameters())
        arena = ParameterArena(params)
        fill_grads(model, 1)
        params[0].grad = None  # missing gradient -> zeros
        vec = arena.gather_grad()
        assert np.array_equal(vec[: arena.sizes[0]], np.zeros(arena.sizes[0], np.float32))
        off = arena.offsets[1]
        assert np.array_equal(vec[off : off + arena.sizes[1]], params[1].grad.reshape(-1))
        arena.scatter_grad(vec)
        assert params[0].grad.base is vec
        assert np.array_equal(params[0].grad, np.zeros_like(params[0].data))

    def test_intact_detects_rebinding(self):
        model = small_model()
        params = list(model.parameters())
        arena = ParameterArena(params)
        assert arena.intact()
        params[2].data = params[2].data.copy()  # what the AMP round-trip does
        assert not arena.intact()

    def test_load_state_dict_preserves_views(self):
        model = small_model()
        state = {k: v + 3.0 for k, v in model.state_dict().items()}
        arena = ParameterArena(list(model.parameters()))
        model.load_state_dict(state)
        assert arena.intact()
        for name, p in model.named_parameters():
            assert np.array_equal(p.data, state[name])
            assert p.data.base is arena.flat


class TestFusedSGD:
    @pytest.mark.parametrize(
        "momentum,weight_decay,nesterov",
        [(0.0, 0.0, False), (0.9, 0.0, False), (0.9, 1e-4, False), (0.9, 1e-4, True)],
    )
    def test_bit_exact_vs_per_tensor_loop(self, momentum, weight_decay, nesterov):
        m1, m2 = small_model(7), small_model(7)
        # Exempt one parameter from decay, as BatchNorm scales are.
        list(m1.parameters())[1].no_decay = True
        list(m2.parameters())[1].no_decay = True
        o1 = SGD(m1.parameters(), lr=0.05, momentum=momentum,
                 weight_decay=weight_decay, nesterov=nesterov)
        o2 = FusedSGD(m2.parameters(), lr=0.05, momentum=momentum,
                      weight_decay=weight_decay, nesterov=nesterov)
        for step in range(5):
            fill_grads(m1, 100 + step)
            fill_grads(m2, 100 + step)
            o1.step()
            o2.step()
            for a, b in zip(m1.parameters(), m2.parameters()):
                assert np.array_equal(a.data, b.data)

    def test_bit_exact_on_real_backward_grads(self):
        """Gradcheck-style: gradients from a real backward pass through the
        arena views drive the fused update to bit-identical weights."""
        m1, m2 = conv_model(3), conv_model(3)
        o1 = SGD(m1.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
        o2 = FusedSGD(m2.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
        rng = np.random.default_rng(5)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(3):
            x = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
            y = rng.integers(0, 4, size=4)
            for model, opt in ((m1, o1), (m2, o2)):
                opt.zero_grad()
                loss = loss_fn(model(Tensor(x)), y)
                loss.backward()
                opt.step()
            for a, b in zip(m1.parameters(), m2.parameters()):
                assert np.array_equal(a.data, b.data)

    def test_step_flat_matches_step(self):
        m1, m2 = small_model(11), small_model(11)
        o1 = FusedSGD(m1.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        o2 = FusedSGD(m2.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        arena2 = o2._ensure_arena()
        for step in range(3):
            fill_grads(m1, 50 + step)
            fill_grads(m2, 50 + step)
            flat = arena2.gather_grad()
            o1.step()
            o2.step_flat(flat)
            for a, b in zip(m1.parameters(), m2.parameters()):
                assert np.array_equal(a.data, b.data)

    def test_rebuild_after_external_rebind(self):
        """Rebinding p.data (as AMP does) invalidates the arena; the next
        step rebuilds it and still matches the per-tensor loop (modulo the
        momentum reset both sides share via fresh optimizers)."""
        m1, m2 = small_model(13), small_model(13)
        o2 = FusedSGD(m2.parameters(), lr=0.05)
        fill_grads(m2, 1)
        o2.step()
        first_arena = o2._arena
        # External rebind breaks the aliasing...
        p = o2.params[0]
        p.data = p.data.copy()
        fill_grads(m2, 2)
        o2.step()  # ...and the step transparently rebuilds.
        assert o2._arena is not first_arena
        assert o2._arena.intact()
        # Same two steps through the reference loop.
        o1 = SGD(m1.parameters(), lr=0.05)
        fill_grads(m1, 1)
        o1.step()
        fill_grads(m1, 2)
        o1.step()
        for a, b in zip(m1.parameters(), m2.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_rebind_drops_arena(self):
        m1, m2 = small_model(17), small_model(19)
        opt = FusedSGD(m1.parameters(), lr=0.05, momentum=0.9)
        fill_grads(m1, 1)
        opt.step()
        opt.rebind(m2.parameters())
        assert opt._arena is None
        fill_grads(m2, 2)
        opt.step()  # works against the new parameter list
        assert opt._arena.intact()

    def test_zero_grad_then_step_is_noop_without_decay(self):
        model = small_model(23)
        opt = FusedSGD(model.parameters(), lr=0.05)
        opt.zero_grad()
        before = [p.data.copy() for p in model.parameters()]
        opt.step()  # all grads None -> gathered zeros -> no movement
        for p, old in zip(model.parameters(), before):
            assert np.array_equal(p.data, old)

    def test_state_dict_round_trip_keeps_arena(self):
        model = small_model(29)
        opt = FusedSGD(model.parameters(), lr=0.05)
        fill_grads(model, 1)
        opt.step()
        arena = opt._arena
        state = model.state_dict()
        model.load_state_dict(state)
        assert arena.intact()
        fill_grads(model, 2)
        opt.step()
        assert opt._arena is arena  # no rebuild needed
