"""Spectral analysis tools and automatic rank allocation."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    FactorizationConfig,
    allocation_report,
    budget_rank_allocation,
    build_hybrid,
    effective_rank,
    energy_curve,
    energy_rank,
    energy_rank_allocation,
    layer_spectra,
    singular_values,
    stable_rank,
)


class TestSingularValues:
    def test_2d_matches_numpy(self, rng):
        w = rng.standard_normal((8, 5)).astype(np.float32)
        s = singular_values(w)
        np.testing.assert_allclose(s, np.linalg.svd(w.astype(np.float64), compute_uv=False))

    def test_conv_kernel_unrolled(self, rng):
        w = rng.standard_normal((6, 3, 3, 3)).astype(np.float32)
        s = singular_values(w)
        assert len(s) == min(3 * 9, 6)

    def test_invalid_ndim_raises(self, rng):
        with pytest.raises(ValueError):
            singular_values(rng.standard_normal(5))


class TestEnergyCurve:
    def test_monotone_and_normalized(self, rng):
        s = np.sort(np.abs(rng.standard_normal(10)))[::-1]
        curve = energy_curve(s)
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == pytest.approx(1.0)

    def test_zero_spectrum(self):
        curve = energy_curve(np.zeros(4))
        assert np.allclose(curve, 1.0)

    def test_energy_rank_exact_lowrank(self):
        s = np.array([3.0, 2.0, 0.0, 0.0])
        assert energy_rank(s, 0.999) == 2

    def test_energy_rank_threshold_one_is_full(self):
        s = np.array([3.0, 2.0, 1.0])
        assert energy_rank(s, 1.0) == 3

    def test_energy_rank_invalid_threshold(self):
        with pytest.raises(ValueError):
            energy_rank(np.ones(3), 0.0)


class TestRankSummaries:
    def test_effective_rank_uniform_spectrum(self):
        # All-equal singular values -> effective rank == count.
        assert effective_rank(np.ones(7)) == pytest.approx(7.0, rel=1e-6)

    def test_effective_rank_single_direction(self):
        assert effective_rank(np.array([5.0, 0.0, 0.0])) == pytest.approx(1.0)

    def test_stable_rank_bounds(self, rng):
        w = rng.standard_normal((10, 10))
        s = singular_values(w.astype(np.float32))
        sr = stable_rank(s)
        assert 1.0 <= sr <= 10.0

    def test_stable_rank_identity(self):
        assert stable_rank(np.ones(6)) == pytest.approx(6.0)

    def test_zero_spectrum_ranks(self):
        assert effective_rank(np.zeros(3)) == 0.0
        assert stable_rank(np.zeros(3)) == 0.0


class TestLayerSpectra:
    def test_covers_all_leaf_types(self, rng):
        model = nn.Sequential(nn.Conv2d(3, 4, 3), nn.Flatten(), nn.Linear(4, 2))
        spectra = layer_spectra(model)
        assert set(spectra) == {"0", "2"}

    def test_lstm_per_gate(self):
        model = nn.LSTMLayer(4, 4)
        spectra = layer_spectra(model)
        assert len(spectra) == 8  # 4 gates x (ih, hh)

    def test_training_lowers_effective_rank(self, rng):
        """The paper's spectral-sparsity claim in miniature: fitting a
        low-rank target drives a layer's effective rank down."""
        from repro.optim import SGD
        from repro.tensor import Tensor

        lin = nn.Linear(16, 16, bias=False)
        before = effective_rank(singular_values(lin.weight.data))
        # Target function is rank-2.
        a = rng.standard_normal((16, 2)).astype(np.float32)
        b = rng.standard_normal((2, 16)).astype(np.float32)
        target_w = (a @ b).T
        opt = SGD([lin.weight], lr=0.05)
        x = Tensor(rng.standard_normal((64, 16)))
        for _ in range(200):
            opt.zero_grad()
            pred = lin(x)
            tgt = Tensor(x.data @ target_w)
            ((pred - tgt) ** 2).mean().backward()
            opt.step()
        after = effective_rank(singular_values(lin.weight.data))
        assert after < before


class TestEnergyRankAllocation:
    def _model(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1), nn.ReLU(),
            nn.Conv2d(8, 8, 3, padding=1), nn.ReLU(), nn.GlobalAvgPool2d(),
            nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 4),
        )
        return model

    def test_returns_overrides_for_conv_and_linear(self, rng):
        overrides = energy_rank_allocation(self._model(rng), 0.9)
        assert set(overrides) == {"0", "2", "5", "7"}
        assert all(r >= 1 for r in overrides.values())

    def test_higher_threshold_never_lowers_rank(self, rng):
        model = self._model(rng)
        lo = energy_rank_allocation(model, 0.5)
        hi = energy_rank_allocation(model, 0.99)
        for path in lo:
            assert hi[path] >= lo[path]

    def test_lowrank_weights_get_small_ranks(self, rng):
        model = nn.Sequential(nn.Linear(16, 16, bias=False))
        lin = model.get_submodule("0")
        a = rng.standard_normal((16, 3)).astype(np.float32)
        b = rng.standard_normal((3, 16)).astype(np.float32)
        lin.weight.data = (a @ b).astype(np.float32)
        overrides = energy_rank_allocation(model, 0.999)
        assert overrides["0"] <= 3

    def test_plugs_into_build_hybrid(self, rng):
        model = self._model(rng)
        overrides = energy_rank_allocation(model, 0.8)
        cfg = FactorizationConfig(rank_overrides=overrides, skip_first_conv=False,
                                  skip_last_fc=False)
        hybrid, report = build_hybrid(model, cfg)
        granted = dict(report.replaced)
        for path, r in overrides.items():
            assert granted[path] == r

    def test_max_ratio_caps(self, rng):
        model = self._model(rng)
        overrides = energy_rank_allocation(model, 0.9999, max_ratio=0.25)
        for path, r in overrides.items():
            pass  # all capped at quarter rank
        assert overrides["5"] <= max(1, int(0.25 * 8))


class TestBudgetRankAllocation:
    def test_respects_budget(self, rng):
        model = nn.Sequential(nn.Linear(32, 32, bias=False), nn.ReLU(),
                              nn.Linear(32, 32, bias=False))
        budget = 1000
        ranks = budget_rank_allocation(model, budget)
        spent = sum(r * 64 for r in ranks.values())
        assert spent <= budget

    def test_spends_where_energy_is(self, rng):
        # Layer A is rank-1 (one big atom); layer B has a flat spectrum —
        # the allocator should give B more rank once A's single direction
        # is captured.
        model = nn.Sequential(nn.Linear(16, 16, bias=False), nn.ReLU(),
                              nn.Linear(16, 16, bias=False))
        a = model.get_submodule("0")
        b = model.get_submodule("2")
        u = rng.standard_normal(16).astype(np.float32)
        a.weight.data = np.outer(u, u).astype(np.float32)  # rank 1
        b.weight.data = np.eye(16, dtype=np.float32) * 1.0  # flat spectrum
        ranks = budget_rank_allocation(model, param_budget=16 * 32 // 2)
        assert ranks["2"] > ranks["0"]

    def test_tight_budget_floors(self, rng):
        model = nn.Sequential(nn.Linear(64, 64, bias=False))
        ranks = budget_rank_allocation(model, param_budget=10)
        assert ranks["0"] == 1

    def test_allocation_report(self, rng):
        model = nn.Sequential(nn.Linear(8, 8, bias=False))
        overrides = {"0": 4}
        rows = allocation_report(model, overrides)
        assert len(rows) == 1
        path, full, r, energy = rows[0]
        assert path == "0" and full == 8 and r == 4
        assert 0.0 < energy <= 1.0
