"""Analytic cost-model properties: α–β formulas, the two-level
hierarchical topology, and the topology dispatchers.

The key identity (relied on by the bake-off's crossover analysis): the
hierarchical allreduce's bandwidth term reduces *exactly* to the flat
ring's when both fabrics share one bandwidth —

    2(g-1)/g·M/B + 2(n-1)/n·(M/g)/B = 2(ng-1)/(ng)·M/B

so with zero latency hierarchy is free, and any difference between the
topologies is attributable to latency rounds and the slow fabric's share.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    ClusterSpec,
    HierarchicalSpec,
    allgather_cost,
    allreduce_cost,
    broadcast_cost,
    broadcast_time,
    bucket_comm_times,
    hierarchical_allgather_time,
    hierarchical_allreduce_time,
    hierarchical_broadcast_time,
    pipelined_broadcast_cost,
    pipelined_broadcast_time,
    allgather_time,
    ring_allreduce_time,
)

NBYTES = st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False)
WORLD = st.integers(1, 64)
BW = st.floats(0.01, 400.0, allow_nan=False, allow_infinity=False)
LAT = st.floats(0.0, 1e-3, allow_nan=False, allow_infinity=False)

COSTS = [ring_allreduce_time, allgather_time, broadcast_time]


class TestMonotonicity:
    @pytest.mark.parametrize("cost", COSTS)
    @given(a=NBYTES, b=NBYTES, p=WORLD, bw=BW, lat=LAT)
    @settings(max_examples=60, deadline=None)
    def test_more_bytes_never_cheaper(self, cost, a, b, p, bw, lat):
        spec = ClusterSpec(p, bw, lat)
        lo, hi = sorted((a, b))
        assert cost(lo, spec) <= cost(hi, spec)

    @pytest.mark.parametrize("cost", COSTS)
    @given(nbytes=NBYTES, p=WORLD, bw=BW, l1=LAT, l2=LAT)
    @settings(max_examples=60, deadline=None)
    def test_more_latency_never_cheaper(self, cost, nbytes, p, bw, l1, l2):
        lo, hi = sorted((l1, l2))
        assert cost(nbytes, ClusterSpec(p, bw, lo)) <= cost(
            nbytes, ClusterSpec(p, bw, hi)
        )

    @pytest.mark.parametrize("cost", COSTS)
    @given(nbytes=NBYTES, p=WORLD, bw=BW, lat=LAT,
           deg=st.floats(0.05, 1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_degraded_links_never_cheaper(self, cost, nbytes, p, bw, lat, deg):
        spec = ClusterSpec(p, bw, lat)
        assert cost(nbytes, spec, degradation=deg) >= cost(nbytes, spec)

    @given(nbytes=NBYTES, nodes=st.integers(1, 8), gpus=st.integers(1, 8),
           inter=BW, intra=BW)
    @settings(max_examples=60, deadline=None)
    def test_hierarchical_monotone_in_bytes(self, nbytes, nodes, gpus, inter, intra):
        spec = HierarchicalSpec(nodes, gpus, inter, intra)
        assert hierarchical_allreduce_time(nbytes, spec) <= (
            hierarchical_allreduce_time(nbytes * 2 + 1, spec)
        )
        assert hierarchical_allgather_time(nbytes, spec) <= (
            hierarchical_allgather_time(nbytes * 2 + 1, spec)
        )
        assert hierarchical_broadcast_time(nbytes, spec) <= (
            hierarchical_broadcast_time(nbytes * 2 + 1, spec)
        )


class TestPipelinedBroadcast:
    @given(nbytes=st.floats(1.0, 1e8, allow_nan=False), p=WORLD, bw=BW, lat=LAT)
    @settings(max_examples=60, deadline=None)
    def test_single_chunk_equals_monolithic(self, nbytes, p, bw, lat):
        spec = ClusterSpec(p, bw, lat)
        assert pipelined_broadcast_time([nbytes], spec) == pytest.approx(
            broadcast_time(nbytes, spec)
        )

    @given(chunks=st.lists(st.floats(0.0, 1e7, allow_nan=False), min_size=1,
                           max_size=8),
           p=WORLD, bw=BW)
    @settings(max_examples=60, deadline=None)
    def test_tiled_at_most_monolithic_without_latency(self, chunks, p, bw):
        # The latency-free regime where pipelining is a pure win: the
        # bandwidth term is paid once plus one max-chunk tail instead of
        # once per tree level.
        spec = ClusterSpec(p, bw, latency_s=0.0)
        tiled = pipelined_broadcast_time(chunks, spec)
        monolithic = broadcast_time(sum(chunks), spec)
        assert tiled <= monolithic * (1 + 1e-12)

    def test_rejects_empty_and_negative_chunks(self):
        spec = ClusterSpec(4)
        with pytest.raises(ValueError):
            pipelined_broadcast_time([], spec)
        with pytest.raises(ValueError):
            pipelined_broadcast_time([1.0, -1.0], spec)


class TestHierarchicalIdentity:
    @given(nbytes=st.floats(0.0, 1e9, allow_nan=False),
           nodes=st.integers(1, 8), gpus=st.integers(1, 8), bw=BW)
    @settings(max_examples=80, deadline=None)
    def test_equals_flat_ring_when_bandwidths_match(self, nbytes, nodes, gpus, bw):
        # Zero latency + one shared bandwidth: the two-level schedule
        # moves exactly the flat ring's bytes.
        hier = HierarchicalSpec(
            nodes, gpus, inter_bandwidth_gbps=bw, intra_bandwidth_gbps=bw,
            inter_latency_s=0.0, intra_latency_s=0.0,
        )
        flat = ClusterSpec(nodes * gpus, bw, latency_s=0.0)
        assert hierarchical_allreduce_time(nbytes, hier) == pytest.approx(
            ring_allreduce_time(nbytes, flat), rel=1e-9, abs=1e-15
        )

    def test_slow_inter_fabric_dominates(self):
        # 8 ranks: one node of 8 fast gpus beats 8 flat nodes on the
        # slow fabric for a bandwidth-bound payload.
        hier = HierarchicalSpec(1, 8, inter_bandwidth_gbps=10.0,
                                intra_bandwidth_gbps=100.0)
        flat = ClusterSpec(8, 10.0)
        nbytes = 100e6
        assert hierarchical_allreduce_time(nbytes, hier) < ring_allreduce_time(
            nbytes, flat
        )


class TestClusterSpecs:
    def test_world_size_and_with_world(self):
        flat = ClusterSpec(8, 25.0, 1e-5)
        assert flat.world_size == 8
        shrunk = flat.with_world(5)
        assert shrunk == ClusterSpec(5, 25.0, 1e-5)

        hier = HierarchicalSpec(4, 8, 10.0, 100.0)
        assert hier.world_size == 32
        assert hier.intra_spec == ClusterSpec(8, 100.0, hier.intra_latency_s)
        assert hier.inter_spec == ClusterSpec(4, 10.0, hier.inter_latency_s)

    @given(world=st.integers(1, 64), nodes=st.integers(1, 8),
           gpus=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_hierarchical_with_world_covers_world(self, world, nodes, gpus):
        spec = HierarchicalSpec(nodes, gpus).with_world(world)
        assert spec.world_size >= world
        assert spec.gpus_per_node <= max(gpus, 1)
        assert spec.world_size - world < spec.gpus_per_node

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(2, bandwidth_gbps=-1.0)
        with pytest.raises(ValueError):
            HierarchicalSpec(0, 8)
        with pytest.raises(ValueError):
            HierarchicalSpec(2, 0)
        with pytest.raises(ValueError):
            HierarchicalSpec(2, 2, inter_bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            HierarchicalSpec(2, 2, intra_latency_s=-1.0)
        with pytest.raises(ValueError):
            HierarchicalSpec(2, 2).with_world(0)
        with pytest.raises(ValueError):
            ring_allreduce_time(1e6, ClusterSpec(4), degradation=0.0)


class TestTopologyDispatch:
    FLAT = ClusterSpec(6, 12.0)
    HIER = HierarchicalSpec(3, 2, 12.0, 60.0)

    def test_allreduce_dispatch(self):
        assert allreduce_cost(1e6, self.FLAT) == ring_allreduce_time(1e6, self.FLAT)
        assert allreduce_cost(1e6, self.HIER) == hierarchical_allreduce_time(
            1e6, self.HIER
        )

    def test_allgather_dispatch(self):
        assert allgather_cost(1e6, self.FLAT) == allgather_time(1e6, self.FLAT)
        assert allgather_cost(1e6, self.HIER) == hierarchical_allgather_time(
            1e6, self.HIER
        )

    def test_broadcast_dispatch(self):
        assert broadcast_cost(1e6, self.FLAT) == broadcast_time(1e6, self.FLAT)
        assert broadcast_cost(1e6, self.HIER) == hierarchical_broadcast_time(
            1e6, self.HIER
        )

    def test_pipelined_broadcast_dispatch(self):
        chunks = [4e5, 6e5]
        assert pipelined_broadcast_cost(chunks, self.FLAT) == (
            pipelined_broadcast_time(chunks, self.FLAT)
        )
        hier = pipelined_broadcast_cost(chunks, self.HIER)
        expected = pipelined_broadcast_time(
            chunks, self.HIER.inter_spec
        ) + pipelined_broadcast_time(chunks, self.HIER.intra_spec)
        assert hier == pytest.approx(expected)

    def test_bucket_comm_times_follow_dispatch(self):
        sizes = [1e5, 2e5, 3e5]
        assert bucket_comm_times(sizes, self.FLAT) == [
            allreduce_cost(nb, self.FLAT) for nb in sizes
        ]
        assert bucket_comm_times(sizes, self.HIER) == [
            allreduce_cost(nb, self.HIER) for nb in sizes
        ]

    def test_single_rank_is_free(self):
        lone = ClusterSpec(1)
        assert allreduce_cost(1e9, lone) == 0.0
        assert allgather_cost(1e9, lone) == 0.0
        assert broadcast_cost(1e9, lone) == 0.0
        hier = HierarchicalSpec(1, 1)
        assert math.isclose(hierarchical_allreduce_time(1e9, hier), 0.0)
