"""Unit tests for Tensor arithmetic, reductions, shape ops, and autograd
bookkeeping (no_grad, detach, gradient accumulation, broadcasting)."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_float_data_becomes_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_int_data_stays_int(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_explicit_dtype_respected(self):
        t = Tensor([1.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_constructors(self):
        assert Tensor.zeros(2, 3).data.sum() == 0
        assert Tensor.ones(2, 3).data.sum() == 6
        assert Tensor.randn(4, 4).shape == (4, 4)


class TestElementwise:
    def test_add(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4, 6])

    def test_add_scalar(self):
        assert np.allclose((Tensor([1.0]) + 2).data, [3])
        assert np.allclose((2 + Tensor([1.0])).data, [3])

    def test_sub(self):
        assert np.allclose((Tensor([5.0]) - Tensor([2.0])).data, [3])
        assert np.allclose((10 - Tensor([4.0])).data, [6])

    def test_mul_div(self):
        assert np.allclose((Tensor([3.0]) * Tensor([4.0])).data, [12])
        assert np.allclose((Tensor([8.0]) / Tensor([2.0])).data, [4])
        assert np.allclose((1 / Tensor([4.0])).data, [0.25])

    def test_neg_pow(self):
        assert np.allclose((-Tensor([2.0])).data, [-2])
        assert np.allclose((Tensor([3.0]) ** 2).data, [9])

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        assert np.allclose(x.exp().log().data, x.data, atol=1e-5)

    def test_sqrt(self):
        assert np.allclose(Tensor([4.0, 9.0]).sqrt().data, [2, 3])

    def test_tanh_sigmoid_range(self):
        x = Tensor(np.linspace(-10, 10, 50))
        assert np.all(np.abs(x.tanh().data) <= 1.0)
        s = x.sigmoid().data
        assert np.all((s >= 0) & (s <= 1))

    def test_sigmoid_extreme_values_stable(self):
        s = Tensor([-1000.0, 1000.0]).sigmoid().data
        assert np.allclose(s, [0.0, 1.0])
        assert np.all(np.isfinite(s))

    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0, 0, 2])

    def test_abs_clip(self):
        assert np.allclose(Tensor([-3.0, 2.0]).abs().data, [3, 2])
        assert np.allclose(Tensor([-3.0, 0.5, 2.0]).clip(-1, 1).data, [-1, 0.5, 1])

    def test_maximum(self):
        out = Tensor([1.0, 5.0]).maximum(Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3, 5])

    def test_comparison_ops_not_differentiable(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        assert not (a > 1.5).requires_grad
        assert not (a < 1.5).requires_grad


class TestBroadcastingGradients:
    def test_add_broadcast_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_mul_broadcast_scalar_like(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.array([[2.0]]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(b.grad, [[4.0]])

    def test_prepended_axis_broadcast(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3, 4)
        assert np.allclose(b.grad, 2.0)


class TestReductions:
    def test_sum_all(self):
        assert Tensor(np.arange(6.0)).sum().item() == 15

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=0, keepdims=True).shape == (1, 3)

    def test_mean(self):
        assert Tensor([2.0, 4.0]).mean().item() == 3

    def test_mean_axis(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(t.mean(axis=1).data, [1, 4])

    def test_max(self):
        t = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert t.max().item() == 5
        assert np.allclose(t.max(axis=1).data, [5, 3])

    def test_max_grad_routes_to_argmax(self):
        t = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        t.max().backward()
        assert np.allclose(t.grad, [0, 1, 0])

    def test_max_grad_splits_ties(self):
        t = Tensor(np.array([5.0, 5.0]), requires_grad=True)
        t.max().backward()
        assert np.allclose(t.grad, [0.5, 0.5])

    def test_var(self):
        x = np.random.randn(10).astype(np.float32)
        assert Tensor(x).var().item() == pytest.approx(x.var(), rel=1e-4)

    def test_sum_grad_is_ones(self):
        t = Tensor(np.zeros((3, 2)), requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_mean_grad_is_uniform(self):
        t = Tensor(np.zeros(4), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, 0.25)


class TestShapeOps:
    def test_reshape_roundtrip(self):
        t = Tensor(np.arange(12.0), requires_grad=True)
        out = t.reshape(3, 4).reshape(-1)
        out.sum().backward()
        assert t.grad.shape == (12,)

    def test_reshape_tuple_arg(self):
        assert Tensor(np.zeros(6)).reshape((2, 3)).shape == (2, 3)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_transpose_grad_inverse_permutation(self):
        t = Tensor(np.random.randn(2, 3, 4), requires_grad=True)
        t.transpose(2, 0, 1).sum().backward()
        assert t.grad.shape == (2, 3, 4)

    def test_T_property(self):
        assert Tensor(np.zeros((2, 5))).T.shape == (5, 2)

    def test_swapaxes(self):
        assert Tensor(np.zeros((2, 3, 4))).swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_and_grad(self):
        t = Tensor(np.arange(10.0), requires_grad=True)
        t[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        assert np.allclose(t.grad, expected)

    def test_getitem_duplicate_index_accumulates(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 1])
        t[idx].sum().backward()
        assert np.allclose(t.grad, [2, 1, 0])

    def test_pad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t.pad(((1, 1), (1, 1)))
        assert out.shape == (4, 4)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_concat(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert np.allclose(a.grad, 1) and np.allclose(b.grad, 1)


class TestMatmul:
    def test_2d(self):
        a = np.random.randn(3, 4).astype(np.float32)
        b = np.random.randn(4, 5).astype(np.float32)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b, atol=1e-5)

    def test_batched(self):
        a = np.random.randn(2, 3, 4).astype(np.float32)
        b = np.random.randn(2, 4, 5).astype(np.float32)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b, atol=1e-5)

    def test_batched_broadcast_grad(self):
        a = Tensor(np.random.randn(2, 3, 4), requires_grad=True)
        b = Tensor(np.random.randn(4, 5), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)

    def test_grad_values_2d(self):
        a = Tensor(np.random.randn(3, 4), requires_grad=True)
        b = Tensor(np.random.randn(4, 2), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b.data.T, atol=1e-5)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 2)), atol=1e-5)


class TestAutogradMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).backward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert np.allclose(t.grad, [2, 4, 6])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        assert np.allclose(t.grad, [5, 5])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_disables_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        (d * 3).sum()  # must not raise nor leak to t
        assert t.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*2; z = y + y -> dz/dx = 4
        x = Tensor(np.ones(1), requires_grad=True)
        y = x * 2
        z = (y + y).sum()
        z.backward()
        assert np.allclose(x.grad, [4])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(1), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1
        y.sum().backward()
        assert np.allclose(x.grad, [1])

    def test_shared_subexpression(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x  # dy/dx = 2x = 4
        y.sum().backward()
        assert np.allclose(x.grad, [4])

    def test_non_requires_grad_input_gets_no_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2))
        (a * b).sum().backward()
        assert b.grad is None
