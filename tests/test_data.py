"""Synthetic datasets, loaders, augmentation, LM batching, translation."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    batchify,
    get_lm_batch,
    make_cifar_like,
    make_imagenet_like,
    make_lm_corpus,
    make_translation_dataset,
    random_crop_flip,
    shard_dataset,
)


class TestImageDatasets:
    def test_cifar_like_shapes_and_norm(self, rng):
        ds = make_cifar_like(n=64, num_classes=5, rng=rng)
        assert ds.images.shape == (64, 3, 32, 32)
        assert ds.labels.shape == (64,)
        assert ds.labels.max() < 5
        assert ds.images.dtype == np.float32

    def test_imagenet_like_dimensions(self, rng):
        ds = make_imagenet_like(n=16, num_classes=20, size=64, rng=rng)
        assert ds.images.shape == (16, 3, 64, 64)
        assert ds.num_classes == 20

    def test_class_structure_learnable(self, rng):
        # Same-class images must be more similar than cross-class images.
        ds = make_cifar_like(n=200, num_classes=2, noise=0.1, rng=rng)
        c0 = ds.images[ds.labels == 0]
        c1 = ds.images[ds.labels == 1]
        within = np.linalg.norm(c0[0] - c0[1])
        across = np.linalg.norm(c0[0] - c1[0])
        assert across > within

    def test_deterministic_given_rng(self):
        a = make_cifar_like(n=8, rng=np.random.default_rng(5))
        b = make_cifar_like(n=8, rng=np.random.default_rng(5))
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_split(self, rng):
        ds = make_cifar_like(n=100, rng=rng)
        tr, va = ds.split(80)
        assert len(tr) == 80 and len(va) == 20

    def test_noise_raises_difficulty(self, rng):
        lo = make_cifar_like(n=400, num_classes=2, noise=0.05, rng=np.random.default_rng(1))
        hi = make_cifar_like(n=400, num_classes=2, noise=0.5, rng=np.random.default_rng(1))

        def nearest_prototype_acc(ds):
            # 1-NN against class means — higher for easier datasets.
            means = np.stack([ds.images[ds.labels == c].mean(axis=0) for c in range(2)])
            d = ((ds.images[:, None] - means[None]) ** 2).sum(axis=(2, 3, 4))
            return (d.argmin(axis=1) == ds.labels).mean()

        assert nearest_prototype_acc(lo) >= nearest_prototype_acc(hi)


class TestAugmentation:
    def test_shape_preserved(self, rng):
        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        out = random_crop_flip(x, rng)
        assert out.shape == x.shape

    def test_content_changed(self, rng):
        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        out = random_crop_flip(x, rng)
        assert not np.allclose(out, x)

    def test_values_from_input_support(self, rng):
        x = rng.random((4, 3, 8, 8)).astype(np.float32)
        out = random_crop_flip(x, rng, pad=2)
        assert out.min() >= x.min() - 1e-6 and out.max() <= x.max() + 1e-6


class TestDataLoader:
    def test_batch_count(self, rng):
        x = np.zeros((50, 4), dtype=np.float32)
        y = np.zeros(50, dtype=np.int64)
        assert len(DataLoader(x, y, 16)) == 4
        assert len(DataLoader(x, y, 16, drop_last=True)) == 3

    def test_iteration_covers_all(self, rng):
        x = np.arange(20, dtype=np.float32).reshape(20, 1)
        y = np.arange(20)
        seen = np.concatenate([yb for _, yb in DataLoader(x, y, 6)])
        assert sorted(seen.tolist()) == list(range(20))

    def test_shuffle_changes_order(self, rng):
        x = np.arange(64, dtype=np.float32).reshape(64, 1)
        y = np.arange(64)
        dl = DataLoader(x, y, 64, shuffle=True, rng=rng)
        (_, y1), = list(dl)
        (_, y2), = list(dl)
        assert not np.array_equal(y1, y2)

    def test_no_shuffle_stable(self):
        x = np.arange(10, dtype=np.float32).reshape(10, 1)
        y = np.arange(10)
        (_, y1), = list(DataLoader(x, y, 10))
        assert np.array_equal(y1, np.arange(10))

    def test_transform_applied(self, rng):
        x = np.ones((8, 2), dtype=np.float32)
        y = np.zeros(8, dtype=np.int64)
        dl = DataLoader(x, y, 4, transform=lambda b, r: b * 2)
        xb, _ = next(iter(dl))
        assert np.allclose(xb, 2.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((4, 1)), np.zeros(5), 2)

    def test_shard_dataset_equal_sizes(self):
        x = np.zeros((33, 2))
        y = np.zeros(33)
        shards = shard_dataset(x, y, 4)
        assert len(shards) == 4
        assert all(len(sx) == 8 for sx, _ in shards)


class TestLMCorpus:
    def test_splits_and_vocab(self, rng):
        c = make_lm_corpus(vocab_size=50, n_train=2000, n_valid=300, n_test=300, rng=rng)
        assert len(c.train) == 2000 and len(c.valid) == 300
        assert c.train.max() < 50 and c.train.min() >= 0

    def test_markov_structure_low_entropy(self, rng):
        # With branching 4, the conditional entropy must be far below
        # log(vocab): successors of a token concentrate on 4 values.
        c = make_lm_corpus(vocab_size=64, n_train=8000, branching=4, rng=rng)
        successors = {}
        for a, b in zip(c.train[:-1], c.train[1:]):
            successors.setdefault(int(a), set()).add(int(b))
        max_successors = max(len(s) for s in successors.values())
        assert max_successors <= 4

    def test_batchify_shape(self, rng):
        c = make_lm_corpus(vocab_size=30, n_train=1000, rng=rng)
        data = batchify(c.train, 8)
        assert data.shape[1] == 8
        assert data.shape[0] == 1000 // 8

    def test_get_lm_batch_targets_shifted(self, rng):
        data = np.arange(40).reshape(10, 4)
        x, y = get_lm_batch(data, 0, 5)
        assert np.array_equal(y, data[1:6])
        assert np.array_equal(x, data[0:5])

    def test_get_lm_batch_tail_clamped(self):
        data = np.arange(20).reshape(10, 2)
        x, y = get_lm_batch(data, 8, 5)
        assert len(x) == 1  # only one step remains


class TestTranslation:
    def test_shapes_and_special_tokens(self, rng):
        ds = make_translation_dataset(n=32, vocab_size=30, rng=rng)
        assert ds.src.shape == ds.tgt.shape
        assert np.all(ds.tgt[:, 0] == ds.bos_idx)
        assert all(ds.eos_idx in row for row in ds.src)

    def test_target_is_reversed_permutation(self, rng):
        ds = make_translation_dataset(n=16, vocab_size=20, min_len=4, max_len=4, rng=rng)
        # Recover the permutation from one pair and verify on another.
        mapping = {}
        for row in range(len(ds)):
            src_toks = ds.src[row][:4]
            tgt_toks = ds.tgt[row][1:5][::-1]
            for s, t in zip(src_toks, tgt_toks):
                if s in mapping:
                    assert mapping[s] == t
                mapping[s] = t

    def test_mapping_is_bijection(self, rng):
        ds = make_translation_dataset(n=200, vocab_size=20, rng=rng)
        pairs = set()
        for row in range(len(ds)):
            k = int((ds.src[row] == 2).argmax())
            for s, t in zip(ds.src[row][:k], ds.tgt[row][1 : 1 + k][::-1]):
                pairs.add((int(s), int(t)))
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        assert len(set(sources)) == len(sources) == len(set(targets))

    def test_split(self, rng):
        ds = make_translation_dataset(n=50, rng=rng)
        a, b = ds.split(40)
        assert len(a) == 40 and len(b) == 10
