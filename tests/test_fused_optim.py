"""Fused arena Adam/LAMB: bit-exactness/tolerance vs the per-tensor loops,
grad-is-None semantics, state persistence across an AMP-driven arena
rebuild, and the segmented-norm property behind LAMB's trust ratios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.models import MLP
from repro.nn.amp import autocast_round_trip
from repro.optim import LAMB, SGD, Adam, FusedAdam, FusedLAMB, FusedSGD
from repro.tensor import Tensor, backend
from repro.tensor.backend import TOLERANCE_ATOL, TOLERANCE_RTOL, FastBackend
from repro.utils import set_seed


def small_model(seed=0):
    set_seed(seed)
    return MLP(12, [10, 8], 4)


def conv_model(seed=0):
    set_seed(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),
    )


def fill_grads(model, seed):
    rng = np.random.default_rng(seed)
    for p in model.parameters():
        p.grad = rng.standard_normal(p.data.shape).astype(np.float32)


PAIRS = [
    (Adam, FusedAdam, "exact"),
    (LAMB, FusedLAMB, "tolerance"),
]


def assert_match(kind, a, b):
    if kind == "exact":
        assert np.array_equal(a, b)
    else:
        np.testing.assert_allclose(b, a, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)


class TestFusedVsLoop:
    @pytest.mark.parametrize("loop_cls,fused_cls,kind", PAIRS)
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-2])
    def test_matches_per_tensor_loop(self, loop_cls, fused_cls, kind, weight_decay):
        m1, m2 = small_model(7), small_model(7)
        # Exempt one parameter from decay, as BatchNorm scales are.
        list(m1.parameters())[1].no_decay = True
        list(m2.parameters())[1].no_decay = True
        o1 = loop_cls(m1.parameters(), lr=1e-3, weight_decay=weight_decay)
        o2 = fused_cls(m2.parameters(), lr=1e-3, weight_decay=weight_decay)
        for step in range(5):
            fill_grads(m1, 100 + step)
            fill_grads(m2, 100 + step)
            o1.step()
            o2.step()
            for a, b in zip(m1.parameters(), m2.parameters()):
                assert_match(kind, a.data, b.data)

    @pytest.mark.parametrize("loop_cls,fused_cls,kind", PAIRS)
    def test_matches_on_real_backward_grads(self, loop_cls, fused_cls, kind):
        """Gradcheck-style: gradients from a real backward pass through the
        arena views drive the fused update to matching weights."""
        m1, m2 = conv_model(3), conv_model(3)
        o1 = loop_cls(m1.parameters(), lr=1e-3, weight_decay=1e-2)
        o2 = fused_cls(m2.parameters(), lr=1e-3, weight_decay=1e-2)
        rng = np.random.default_rng(5)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(3):
            x = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
            y = rng.integers(0, 4, size=4)
            for model, opt in ((m1, o1), (m2, o2)):
                opt.zero_grad()
                loss = loss_fn(model(Tensor(x)), y)
                loss.backward()
                opt.step()
            for a, b in zip(m1.parameters(), m2.parameters()):
                assert_match(kind, a.data, b.data)

    @pytest.mark.parametrize("fused_cls", [FusedAdam, FusedLAMB])
    def test_step_flat_matches_step(self, fused_cls):
        m1, m2 = small_model(11), small_model(11)
        o1 = fused_cls(m1.parameters(), lr=1e-3, weight_decay=1e-2)
        o2 = fused_cls(m2.parameters(), lr=1e-3, weight_decay=1e-2)
        arena2 = o2._ensure_arena()
        for step in range(3):
            fill_grads(m1, 50 + step)
            fill_grads(m2, 50 + step)
            flat = arena2.gather_grad()
            o1.step()
            o2.step_flat(flat)
            for a, b in zip(m1.parameters(), m2.parameters()):
                assert np.array_equal(a.data, b.data)

    @pytest.mark.parametrize("loop_cls,fused_cls,kind", PAIRS)
    def test_fast_backend_matches_loop_too(self, loop_cls, fused_cls, kind):
        """The dispatched fast variants keep the same loop contract:
        adam_update stays bit-exact, lamb_update within tolerance."""
        m1, m2 = small_model(31), small_model(31)
        o1 = loop_cls(m1.parameters(), lr=1e-3, weight_decay=1e-2)
        o2 = fused_cls(m2.parameters(), lr=1e-3, weight_decay=1e-2)
        with backend.use("fast"):
            for step in range(4):
                fill_grads(m1, 900 + step)
                fill_grads(m2, 900 + step)
                o1.step()
                o2.step()
        for a, b in zip(m1.parameters(), m2.parameters()):
            assert_match(kind, a.data, b.data)


class TestGradNoneSemantics:
    """Pin the documented divergence: the loop *skips* None-grad params,
    the fused step treats them as zero-gradient segments."""

    @pytest.mark.parametrize("loop_cls,fused_cls", [(Adam, FusedAdam), (LAMB, FusedLAMB)])
    def test_loop_skips_fused_advances(self, loop_cls, fused_cls):
        m1, m2, m3 = small_model(41), small_model(41), small_model(41)
        o1 = loop_cls(m1.parameters(), lr=1e-3)
        o2 = fused_cls(m2.parameters(), lr=1e-3)
        o3 = loop_cls(m3.parameters(), lr=1e-3)
        # Step 1: every parameter has a gradient -> moments become nonzero.
        for m in (m1, m2, m3):
            fill_grads(m, 1)
        for o in (o1, o2, o3):
            o.step()
        # Step 2: first parameter's grad goes None in m1/m2, explicit
        # zeros in m3 (the fused semantics, spelled out).
        for m in (m1, m2, m3):
            fill_grads(m, 2)
        p1, p2, p3 = (list(m.parameters())[0] for m in (m1, m2, m3))
        before = p1.data.copy()
        p1.grad = None
        p2.grad = None
        p3.grad = np.zeros_like(p3.data)
        for o in (o1, o2, o3):
            o.step()
        # Loop: untouched.  Fused: moved (nonzero moments keep decaying).
        assert np.array_equal(p1.data, before)
        assert not np.array_equal(p2.data, before)
        # Fused None-grad == loop zero-grad (step counts agree: every m3
        # parameter stepped both times, matching the fused global count).
        assert np.array_equal(p2.data, p3.data)
        # Parameters that kept their gradients agree everywhere.
        for a, b in zip(list(m1.parameters())[1:], list(m2.parameters())[1:]):
            np.testing.assert_allclose(b.data, a.data, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)


class TestStatePersistence:
    """state_dict/load_state_dict carry fused state across the arena
    rebuild forced by an AMP cast round-trip."""

    CASES = [
        (SGD, FusedSGD, dict(lr=0.05, momentum=0.9, weight_decay=1e-4), "exact"),
        (Adam, FusedAdam, dict(lr=1e-3, weight_decay=1e-2), "exact"),
        (LAMB, FusedLAMB, dict(lr=1e-3, weight_decay=1e-2), "tolerance"),
    ]

    @pytest.mark.parametrize("loop_cls,fused_cls,kwargs,kind", CASES)
    def test_round_trip_through_amp_rebuild(self, loop_cls, fused_cls, kwargs, kind):
        m1, m2 = small_model(53), small_model(53)
        o1 = loop_cls(m1.parameters(), **kwargs)
        o2 = fused_cls(m2.parameters(), **kwargs)
        for step in range(3):
            fill_grads(m1, 700 + step)
            fill_grads(m2, 700 + step)
            o1.step()
            o2.step()
        arena_before = o2._arena
        state = o2.state_dict()
        # The AMP cast rebinds every p.data -> the arena is invalidated.
        # The loop optimizer's state (keyed by parameter identity) is
        # untouched by the cast, so it is the continuation reference.
        autocast_round_trip(m1)
        autocast_round_trip(m2)
        o2.load_state_dict(state)
        assert o2._arena is not arena_before
        assert o2._arena.intact()
        for step in range(2):
            fill_grads(m1, 800 + step)
            fill_grads(m2, 800 + step)
            o1.step()
            o2.step()
        for a, b in zip(m1.parameters(), m2.parameters()):
            assert_match(kind, a.data, b.data)

    @pytest.mark.parametrize("fused_cls,kwargs", [
        (FusedSGD, dict(lr=0.05, momentum=0.9)),
        (FusedAdam, dict(lr=1e-3)),
        (FusedLAMB, dict(lr=1e-3)),
    ])
    def test_size_mismatch_rejected(self, fused_cls, kwargs):
        o1 = fused_cls(small_model(61).parameters(), **kwargs)
        o2 = fused_cls(MLP(6, [5], 3).parameters(), **kwargs)
        with pytest.raises(ValueError, match="arena"):
            o2.load_state_dict(o1.state_dict())

    def test_rebuild_without_load_resets_state(self):
        """Without an explicit load, the rebuild drops moments — exactly
        as re-instantiating the optimizer would (FusedSGD precedent)."""
        model = small_model(67)
        opt = FusedAdam(model.parameters(), lr=1e-3)
        fill_grads(model, 1)
        opt.step()
        assert opt._t == 1 and float(np.abs(opt._m).max()) > 0
        autocast_round_trip(model)
        fill_grads(model, 2)
        opt.step()  # transparently rebuilds; fresh state, step count 1
        assert opt._t == 1


class TestSegmentedNormProperty:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=24),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduceat_matches_per_tensor_norms(self, sizes, seed):
        """For arbitrary arena tilings, the fast backend's segmented
        reduceat norms match per-tensor np.linalg.norm within the
        published tolerance."""
        total = sum(sizes)
        x = np.random.default_rng(seed).standard_normal(total).astype(np.float32)
        starts = np.cumsum([0] + sizes[:-1]).astype(np.intp)
        seg_sizes = np.asarray(sizes, dtype=np.intp)
        got = FastBackend().segment_norms(x, starts, seg_sizes)
        ref = np.array(
            [np.linalg.norm(x[o : o + s].astype(np.float64)) for o, s in zip(starts, sizes)]
        )
        np.testing.assert_allclose(got, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)
        # And the reference backend's per-segment dots agree with it too.
        ref_backend = backend.get("numpy").segment_norms(x, starts, seg_sizes)
        np.testing.assert_allclose(ref_backend, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)
