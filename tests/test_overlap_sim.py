"""Gradient bucketing + comm/compute overlap: bucket assembly, bit-exact
bucketed allreduce (hypothesis), the discrete-event schedule, and the
DistributedTrainer overlap path (numerics + fault-timeline determinism)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import PowerSGD, TopK
from repro.data import DataLoader, make_cifar_like, shard_dataset
from repro.distributed import (
    Bucket,
    ClusterSpec,
    DistributedTrainer,
    GradientArrivalRecorder,
    allreduce_mean,
    broadcast_time,
    bucket_comm_times,
    bucketed_allreduce_mean,
    build_buckets,
    parse_fault_spec,
    pipelined_broadcast_time,
    schedule_overlap,
)
from repro.models import MLP
from repro.optim import SGD, Adam, FusedAdam, FusedSGD
from repro.tensor import Tensor
from repro.utils import set_seed

FLOAT32_BYTES = 4


class TestBuildBuckets:
    def test_reverse_order_contiguous_partition(self):
        sizes = [100, 3, 50, 7, 200, 1]
        buckets = build_buckets(sizes, 300 * FLOAT32_BYTES)
        # Bucket 0 holds the tail of the parameter list (backward's first
        # gradients), and every bucket is a contiguous ascending run.
        assert len(sizes) - 1 in buckets[0].param_indices
        covered = [i for b in buckets for i in b.param_indices]
        assert sorted(covered) == list(range(len(sizes)))
        for b in buckets:
            assert list(b.param_indices) == list(
                range(b.param_indices[0], b.param_indices[-1] + 1)
            )
        # Contiguous slices tile the flat vector exactly.
        spans = sorted((b.offset, b.size) for b in buckets)
        expected = 0
        for off, size in spans:
            assert off == expected
            expected = off + size
        assert expected == sum(sizes)

    def test_cap_respected_unless_single_oversized_tensor(self):
        sizes = [10, 500, 10, 10]
        cap = 100 * FLOAT32_BYTES
        buckets = build_buckets(sizes, cap)
        for b in buckets:
            if len(b.param_indices) > 1:
                assert b.nbytes <= cap
        oversized = [b for b in buckets if 1 in b.param_indices]
        assert len(oversized) == 1 and oversized[0].param_indices == (1,)

    def test_single_bucket_when_cap_huge(self):
        buckets = build_buckets([5, 5, 5], 1e9)
        assert len(buckets) == 1
        assert buckets[0].param_indices == (0, 1, 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_buckets([], 100)
        with pytest.raises(ValueError):
            build_buckets([5], 0)


class TestBucketedAllreduce:
    @given(
        sizes=st.lists(st.integers(1, 40), min_size=1, max_size=8),
        cap_elems=st.integers(1, 60),
        workers=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_bucketed_equals_monolithic_for_any_bucketing(
        self, sizes, cap_elems, workers, seed
    ):
        buckets = build_buckets(sizes, cap_elems * FLOAT32_BYTES)
        total = sum(sizes)
        rng = np.random.default_rng(seed)
        vecs = [
            (rng.standard_normal(total) * 10.0 ** rng.integers(-3, 4)).astype(np.float32)
            for _ in range(workers)
        ]
        mono = allreduce_mean(vecs)
        bucketed = bucketed_allreduce_mean(vecs, buckets)
        assert np.array_equal(mono, bucketed)

    @given(
        cuts=st.lists(st.integers(1, 99), max_size=6),
        workers=st.integers(2, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_partition_is_exact(self, cuts, workers, seed):
        """Not just greedy buckets: *any* tiling of the vector reduces to
        the monolithic result bit for bit."""
        total = 100
        points = [0] + sorted(set(cuts)) + [total]
        buckets = [
            Bucket(i, (), start, end - start)
            for i, (start, end) in enumerate(zip(points[:-1], points[1:]))
        ]
        rng = np.random.default_rng(seed)
        vecs = [rng.standard_normal(total).astype(np.float32) for _ in range(workers)]
        assert np.array_equal(
            allreduce_mean(vecs), bucketed_allreduce_mean(vecs, buckets)
        )

    def test_rejects_non_tiling_buckets(self):
        vecs = [np.ones(10, np.float32)]
        with pytest.raises(ValueError):
            bucketed_allreduce_mean(vecs, [Bucket(0, (), 0, 4), Bucket(1, (), 6, 4)])


class TestScheduleOverlap:
    def test_fully_hidden_when_backward_dominates(self):
        tl = schedule_overlap([0.1, 0.5, 0.9], [0.05, 0.05, 0.05], backward_end=10.0)
        assert tl.exposed == pytest.approx(0.0)
        assert tl.overlap_fraction == pytest.approx(1.0)

    def test_fully_exposed_when_no_compute(self):
        tl = schedule_overlap([0.0, 0.0], [1.0, 2.0], backward_end=0.0)
        assert tl.exposed == pytest.approx(3.0)
        assert tl.overlap_fraction == pytest.approx(0.0)

    def test_serial_channel_and_tail_penalty(self):
        tl = schedule_overlap([0.0, 0.0], [2.0, 1.0], backward_end=2.5, tail_penalty=0.5)
        # Bucket 1 waits for bucket 0's allreduce to finish.
        assert tl.events[1].start == pytest.approx(2.0)
        assert tl.finish == pytest.approx(3.5)
        assert tl.exposed == pytest.approx(1.0)
        assert tl.comm_total == pytest.approx(3.5)

    @given(
        n=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_exposed_bounded_by_comm_total(self, n, seed):
        rng = np.random.default_rng(seed)
        ready = sorted(rng.uniform(0, 1, n))
        comm = rng.uniform(0, 0.5, n)
        backward_end = float(rng.uniform(0.5, 2.0))
        tail = float(rng.uniform(0, 0.2))
        tl = schedule_overlap(ready, comm, backward_end, tail_penalty=tail)
        assert 0.0 <= tl.exposed <= tl.comm_total + 1e-12
        assert 0.0 <= tl.overlap_fraction <= 1.0 + 1e-12
        for prev, cur in zip(tl.events, tl.events[1:]):
            assert cur.start >= prev.end


class TestGradientArrivalRecorder:
    def test_records_reverse_layer_order(self):
        set_seed(0)
        model = MLP(12, [10, 8], 4)
        params = list(model.parameters())
        with GradientArrivalRecorder(params) as rec:
            x = Tensor(np.random.default_rng(0).standard_normal((4, 12)).astype(np.float32))
            loss = model(x).sum()
            loss.backward()
        assert set(rec.arrivals) == set(range(len(params)))
        times = rec.arrival_times()
        assert all(0.0 <= t <= rec.total for t in times)
        # Backward reaches the last layer's parameters first.
        assert times[-1] <= times[0]

    def test_restores_previous_hook(self):
        from repro.tensor import tensor as _tensor

        sentinel = lambda t: None
        _tensor.GRAD_ARRIVAL_HOOK = sentinel
        try:
            with GradientArrivalRecorder([]):
                assert _tensor.GRAD_ARRIVAL_HOOK is not sentinel
            assert _tensor.GRAD_ARRIVAL_HOOK is sentinel
        finally:
            _tensor.GRAD_ARRIVAL_HOOK = None


def make_trainer(overlap, faults=None, fused=False, nodes=4, bucket_mb=0.05, opt_cls=None):
    set_seed(3)
    rng = np.random.default_rng(3)
    model = MLP(3 * 32 * 32, [64, 32], 4)
    ds = make_cifar_like(n=nodes * 8 * 3, num_classes=4, noise=0.2, rng=rng)
    shards = shard_dataset(ds.images, ds.labels, nodes)
    loaders = [DataLoader(x, y, 8) for x, y in shards]
    if opt_cls is None:
        opt_cls = FusedSGD if fused else SGD
        opt = opt_cls(model.parameters(), lr=0.05, momentum=0.9)
    else:
        opt = opt_cls(model.parameters(), lr=1e-3)
    trainer = DistributedTrainer(
        model,
        opt,
        ClusterSpec(nodes, bandwidth_gbps=0.3),
        overlap=overlap,
        bucket_mb=bucket_mb,
        faults=parse_fault_spec(faults) if faults else None,
    )
    return model, trainer, loaders


FAULT_SPEC = (
    "seed=42,straggler=lognormal:0.3:0.5,drop=0.05,link=0.3:0.25:2,"
    "failure=0.02:rejoin:0.5"
)


class TestDistributedOverlap:
    def test_params_bit_equal_to_monolithic(self):
        m0, t0, l0 = make_trainer(False)
        m1, t1, l1 = make_trainer(True)
        t0.train_epoch(l0)
        tl = t1.train_epoch(l1)
        for a, b in zip(m0.parameters(), m1.parameters()):
            assert np.array_equal(a.data, b.data)
        ov = tl.overlap
        assert ov["n_buckets"] == len(t1._buckets) > 1
        assert 0.0 <= ov["overlap_fraction"] <= 1.0
        assert ov["comm_exposed_s"] <= ov["comm_total_s"] + 1e-12
        assert len(t1.overlap_events) == tl.iterations

    def test_fused_optimizer_matches_too(self):
        m0, t0, l0 = make_trainer(False)
        m1, t1, l1 = make_trainer(True, fused=True)
        t0.train_epoch(l0)
        t1.train_epoch(l1)
        for a, b in zip(m0.parameters(), m1.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_fused_adam_matches_loop_adam_under_overlap(self):
        """FusedAdam rides the same step_flat path as FusedSGD: the DDP
        allreduce gives every parameter a gradient, so fused and loop
        Adam are bit-identical across the overlap boundary."""
        m0, t0, l0 = make_trainer(False, opt_cls=Adam)
        m1, t1, l1 = make_trainer(True, opt_cls=FusedAdam)
        t0.train_epoch(l0)
        tl = t1.train_epoch(l1)
        for a, b in zip(m0.parameters(), m1.parameters()):
            assert np.array_equal(a.data, b.data)
        assert tl.overlap["n_buckets"] > 1

    def test_fused_adam_fault_timeline_matches_loop(self):
        """Swapping the optimizer must not perturb the seeded fault
        stream: fault draws are keyed to the comm schedule, not the
        optimizer's update math."""
        m0, t0, l0 = make_trainer(True, faults=FAULT_SPEC, opt_cls=Adam)
        m1, t1, l1 = make_trainer(True, faults=FAULT_SPEC, opt_cls=FusedAdam)
        t0.train_epoch(l0)
        t1.train_epoch(l1)
        ev0 = [e.as_dict() for e in t0.faults.events]
        ev1 = [e.as_dict() for e in t1.faults.events]
        assert ev0 == ev1 and len(ev0) > 0
        for a, b in zip(m0.parameters(), m1.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_fault_timeline_identical_with_and_without_overlap(self):
        """The acceptance-criterion determinism property: a fixed seed
        yields an identical fault event stream whether or not overlap is
        on — bucketing must not consume extra RNG draws.  The one allowed
        divergence is the recovery *cost*: overlap reuses its bucket
        tiling for a pipelined rejoin broadcast, so recovery events keep
        their (kind, iteration, entity) identity but may carry a smaller
        modeled value."""
        m0, t0, l0 = make_trainer(False, faults=FAULT_SPEC)
        m1, t1, l1 = make_trainer(True, faults=FAULT_SPEC)
        tl0 = t0.train_epoch(l0)
        tl1 = t1.train_epoch(l1)
        ev0 = [e.as_dict() for e in t0.faults.events]
        ev1 = [e.as_dict() for e in t1.faults.events]
        keys = lambda evs: [(e["kind"], e["iteration"], e["entity"]) for e in evs]
        assert keys(ev0) == keys(ev1) and len(ev0) > 0
        assert [e for e in ev0 if e["kind"] != "recovery"] == [
            e for e in ev1 if e["kind"] != "recovery"
        ]
        # Numerics stay bit-equal under faults as well.
        for a, b in zip(m0.parameters(), m1.parameters()):
            assert np.array_equal(a.data, b.data)
        # Recovery charges (modeled) never favor the monolithic path.
        assert tl1.other <= tl0.other

    def test_modeled_events_deterministic_across_runs(self):
        _, t1, l1 = make_trainer(True, faults=FAULT_SPEC)
        _, t2, l2 = make_trainer(True, faults=FAULT_SPEC)
        t1.train_epoch(l1)
        t2.train_epoch(l2)

        def modeled(events):
            return [
                (
                    e["iteration"],
                    e["comm_total_s"] - e["tail_penalty_s"],
                    e["tail_penalty_s"],
                    tuple((b["nbytes"], b["comm_s"]) for b in e["buckets"]),
                )
                for e in events
            ]

        assert modeled(t1.overlap_events) == modeled(t2.overlap_events)

    def test_overlap_rejects_non_allreduce_compressors(self):
        """Sum-incompatible encodings (sign/top-k) still cannot overlap —
        they allgather the whole gradient at once.  Allreduce-compatible
        compressors are now accepted and encode per bucket."""
        set_seed(0)
        model = MLP(12, [8], 4)
        opt = SGD(model.parameters(), lr=0.05)
        with pytest.raises(ValueError, match="allreduce-compatible"):
            DistributedTrainer(
                model,
                opt,
                ClusterSpec(4),
                compressor=TopK(4, ratio=0.1),
                overlap=True,
            )

    def test_overlap_accepts_powersgd(self):
        set_seed(0)
        model = MLP(12, [8], 4)
        opt = SGD(model.parameters(), lr=0.05)
        trainer = DistributedTrainer(
            model,
            opt,
            ClusterSpec(4),
            compressor=PowerSGD(4, rank=2),
            overlap=True,
            bucket_mb=0.05,
        )
        assert trainer.overlap and trainer.compressor.name == "powersgd"

    def test_bucket_comm_times_match_sum(self):
        cluster = ClusterSpec(4, bandwidth_gbps=0.3)
        times = bucket_comm_times([1000, 2000, 500], cluster)
        assert len(times) == 3
        assert all(t > 0 for t in times)


class TestPipelinedRecoveryBroadcast:
    """Satellite of the serving PR: rejoin recovery reuses bucket tiling."""

    def test_single_chunk_matches_monolithic(self):
        cluster = ClusterSpec(8, bandwidth_gbps=0.3)
        nbytes = 1_000_000
        assert pipelined_broadcast_time([nbytes], cluster) == pytest.approx(
            broadcast_time(nbytes, cluster)
        )

    def test_tiled_cheaper_than_monolithic_multichunk(self):
        cluster = ClusterSpec(8, bandwidth_gbps=0.3)
        chunks = [250_000] * 4
        tiled = pipelined_broadcast_time(chunks, cluster)
        assert tiled < broadcast_time(sum(chunks), cluster)

    def test_two_nodes_no_pipeline_benefit(self):
        # L = 1 tree level: no store-and-forward to pipeline away, but the
        # per-chunk latency terms still apply.
        cluster = ClusterSpec(2, bandwidth_gbps=0.3)
        chunks = [500_000, 500_000]
        expected = sum(cluster.latency_s + c / cluster.bytes_per_second for c in chunks)
        assert pipelined_broadcast_time(chunks, cluster) == pytest.approx(expected)

    def test_validates_inputs(self):
        cluster = ClusterSpec(4)
        with pytest.raises(ValueError):
            pipelined_broadcast_time([], cluster)
        with pytest.raises(ValueError):
            pipelined_broadcast_time([-1.0], cluster)
        assert pipelined_broadcast_time([1000], ClusterSpec(1)) == 0.0

    def test_rejoin_recovery_cheaper_under_overlap(self):
        """With failures guaranteed, the overlap trainer's recovery events
        carry strictly smaller modeled costs (multi-bucket tiling) while
        remaining aligned one-to-one with the monolithic trainer's."""
        spec = "seed=7,failure=0.2:rejoin:0.1"
        m0, t0, l0 = make_trainer(False, faults=spec)
        m1, t1, l1 = make_trainer(True, faults=spec)
        tl0 = t0.train_epoch(l0)
        tl1 = t1.train_epoch(l1)
        rec0 = [e for e in t0.faults.events if e.kind == "recovery"]
        rec1 = [e for e in t1.faults.events if e.kind == "recovery"]
        assert len(rec0) == len(rec1) > 0
        assert len(t1._ensure_buckets()) > 1
        for a, b in zip(rec0, rec1):
            assert (a.iteration, a.entity) == (b.iteration, b.entity)
            assert b.value < a.value
        assert tl1.other < tl0.other
        # Numerics are unaffected by how the recovery wire time is modeled.
        for a, b in zip(m0.parameters(), m1.parameters()):
            assert np.array_equal(a.data, b.data)
