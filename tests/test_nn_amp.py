"""Mixed-precision emulation: GradScaler dynamics and fp16 round-trips."""

import numpy as np
import pytest

from repro import nn
from repro.nn import GradScaler, autocast_round_trip, cast_gradients_fp16
from repro.nn.module import Parameter


def param_with_grad(grad):
    p = Parameter(np.zeros_like(np.asarray(grad, dtype=np.float32)))
    p.grad = np.asarray(grad, dtype=np.float32)
    return p


class TestGradScaler:
    def test_scale_loss_multiplies(self):
        from repro.tensor import Tensor

        scaler = GradScaler(init_scale=4.0)
        loss = Tensor(np.array(2.0))
        assert scaler.scale_loss(loss).item() == pytest.approx(8.0)

    def test_unscale_divides_grads(self):
        scaler = GradScaler(init_scale=8.0)
        p = param_with_grad([8.0, 16.0])
        assert scaler.unscale_and_check([p])
        assert np.allclose(p.grad, [1.0, 2.0])

    def test_inf_grad_skips_and_backs_off(self):
        scaler = GradScaler(init_scale=8.0, backoff_factor=0.5)
        p = param_with_grad([np.inf])
        assert not scaler.unscale_and_check([p])
        assert scaler.scale == 4.0
        assert p.grad is None  # grads cleared on skip

    def test_nan_grad_skips(self):
        scaler = GradScaler(init_scale=8.0)
        p = param_with_grad([np.nan])
        assert not scaler.unscale_and_check([p])

    def test_growth_after_interval(self):
        scaler = GradScaler(init_scale=2.0, growth_factor=2.0, growth_interval=3)
        for _ in range(3):
            p = param_with_grad([1.0])
            scaler.unscale_and_check([p])
        assert scaler.scale == 4.0

    def test_no_growth_before_interval(self):
        scaler = GradScaler(init_scale=2.0, growth_interval=100)
        p = param_with_grad([1.0])
        scaler.unscale_and_check([p])
        assert scaler.scale == 2.0


class TestFp16RoundTrips:
    def test_autocast_quantizes_parameters(self):
        lin = nn.Linear(4, 4)
        lin.weight.data[:] = 0.1  # 0.1 is not fp16-exact
        autocast_round_trip(lin)
        assert lin.weight.data.dtype == np.float32
        assert not np.allclose(lin.weight.data, 0.1, atol=0)
        assert np.allclose(lin.weight.data, 0.1, atol=1e-4)

    def test_cast_gradients_quantizes(self):
        p = param_with_grad([0.1, 0.2])
        cast_gradients_fp16([p])
        assert p.grad.dtype == np.float32
        assert np.allclose(p.grad, [0.1, 0.2], atol=1e-4)

    def test_cast_handles_none_grads(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        cast_gradients_fp16([p])  # must not raise
        assert p.grad is None

    def test_large_values_saturate_like_fp16(self):
        p = param_with_grad([1e6])
        cast_gradients_fp16([p])
        assert np.isinf(p.grad[0])  # fp16 max is 65504
