"""Truncated-SVD factorization: optimality, Σ^½ splitting, conv unrolling,
per-layer warm-started construction."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    approximation_error,
    default_rank,
    factorize_conv2d,
    factorize_linear,
    factorize_lstm_layer,
    factorize_matrix,
    roll_conv_factors,
    unroll_conv_weight,
)
from repro.tensor import Tensor


class TestFactorizeMatrix:
    def test_full_rank_recovers_exactly(self, rng):
        w = rng.standard_normal((12, 8)).astype(np.float32)
        u, vt = factorize_matrix(w, 8)
        assert np.allclose(u @ vt, w, atol=1e-4)

    def test_shapes(self, rng):
        w = rng.standard_normal((10, 6)).astype(np.float32)
        u, vt = factorize_matrix(w, 3)
        assert u.shape == (10, 3) and vt.shape == (3, 6)

    def test_rank_clamped_to_matrix_rank(self, rng):
        w = rng.standard_normal((5, 3)).astype(np.float32)
        u, vt = factorize_matrix(w, 100)
        assert u.shape[1] == 3

    def test_error_decreases_with_rank(self, rng):
        w = rng.standard_normal((20, 20)).astype(np.float32)
        errs = [
            approximation_error(w, *factorize_matrix(w, r)) for r in (2, 5, 10, 20)
        ]
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < 1e-4

    def test_eckart_young_optimality(self, rng):
        # Truncated SVD must beat a random rank-r factorization.
        w = rng.standard_normal((16, 16)).astype(np.float32)
        u, vt = factorize_matrix(w, 4)
        svd_err = np.linalg.norm(w - u @ vt)
        ru = rng.standard_normal((16, 4)).astype(np.float32)
        rv = rng.standard_normal((4, 16)).astype(np.float32)
        rand_err = np.linalg.norm(w - ru @ rv)
        assert svd_err < rand_err

    def test_sigma_split_balances_factor_norms(self, rng):
        # With U = Ũ Σ^½ and V^T = Σ^½ Ṽ^T, both factors carry the same
        # Frobenius energy.
        w = rng.standard_normal((10, 10)).astype(np.float32)
        u, vt = factorize_matrix(w, 5)
        assert np.linalg.norm(u) == pytest.approx(np.linalg.norm(vt), rel=1e-3)

    def test_non_2d_raises(self, rng):
        with pytest.raises(ValueError):
            factorize_matrix(rng.standard_normal((2, 2, 2)), 1)

    def test_exact_low_rank_input_recovered(self, rng):
        a = rng.standard_normal((10, 3)).astype(np.float32)
        b = rng.standard_normal((3, 8)).astype(np.float32)
        w = a @ b
        u, vt = factorize_matrix(w, 3)
        assert approximation_error(w, u, vt) < 1e-5


class TestConvUnrolling:
    def test_unroll_shape(self, rng):
        w = rng.standard_normal((8, 3, 5, 5)).astype(np.float32)
        assert unroll_conv_weight(w).shape == (75, 8)

    def test_unroll_columns_are_filters(self, rng):
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        unrolled = unroll_conv_weight(w)
        assert np.allclose(unrolled[:, 1], w[1].reshape(-1))

    def test_roll_roundtrip(self, rng):
        w = rng.standard_normal((6, 4, 3, 3)).astype(np.float32)
        u, vt = factorize_matrix(unroll_conv_weight(w), rank=min(4 * 9, 6))
        uk, vk = roll_conv_factors(u, vt, 4, 6, 3)
        assert uk.shape == (6, 4, 3, 3)
        assert vk.shape == (6, 6, 1, 1)


class TestDefaultRank:
    def test_quarter_ratio(self):
        assert default_rank(64, 0.25) == 16
        assert default_rank(512, 0.25) == 128

    def test_never_below_one(self):
        assert default_rank(2, 0.25) == 1
        assert default_rank(1, 0.1) == 1


class TestFactorizeLinear:
    def test_full_rank_functional_equivalence(self, rng):
        lin = nn.Linear(10, 6)
        lr = factorize_linear(lin, 6)
        x = Tensor(rng.standard_normal((4, 10)))
        assert np.allclose(lin(x).data, lr(x).data, atol=1e-4)

    def test_bias_copied(self):
        lin = nn.Linear(5, 4)
        lr = factorize_linear(lin, 2)
        assert np.allclose(lr.bias.data, lin.bias.data)

    def test_no_bias_preserved(self):
        lin = nn.Linear(5, 4, bias=False)
        lr = factorize_linear(lin, 2)
        assert lr.bias is None

    def test_param_reduction(self):
        lin = nn.Linear(100, 100)
        lr = factorize_linear(lin, 25)
        assert lr.num_parameters() < lin.num_parameters()

    def test_effective_weight_is_best_approx(self, rng):
        lin = nn.Linear(20, 20)
        lr = factorize_linear(lin, 5)
        err = approximation_error(lin.weight.data, lr.u.data, lr.vt.data)
        s = np.linalg.svd(lin.weight.data.astype(np.float64), compute_uv=False)
        expected = np.sqrt((s[5:] ** 2).sum() / (s**2).sum())
        assert err == pytest.approx(expected, rel=1e-2)


class TestFactorizeConv:
    def test_full_rank_functional_equivalence(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=1, padding=1)
        lr = factorize_conv2d(conv, rank=8)
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        assert np.allclose(conv(x).data, lr(x).data, atol=1e-3)

    def test_stride_padding_preserved(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        lr = factorize_conv2d(conv, 4)
        assert lr.conv_u.stride == 2 and lr.conv_u.padding == 1
        assert lr.conv_v.stride == 1 and lr.conv_v.padding == 0

    def test_output_shape_matches_original(self, rng):
        conv = nn.Conv2d(4, 6, 3, stride=2, padding=1)
        lr = factorize_conv2d(conv, 2)
        x = Tensor(rng.standard_normal((1, 4, 9, 9)))
        assert lr(x).shape == conv(x).shape

    def test_effective_weight_close_at_high_rank(self, rng):
        conv = nn.Conv2d(2, 4, 3)
        lr = factorize_conv2d(conv, rank=4)
        assert np.allclose(lr.effective_weight(), conv.weight.data, atol=1e-4)

    def test_bias_moves_to_conv_v(self):
        conv = nn.Conv2d(2, 4, 3, bias=True)
        lr = factorize_conv2d(conv, 2)
        assert np.allclose(lr.conv_v.bias.data, conv.bias.data)
        assert lr.conv_u.bias is None


class TestFactorizeLSTM:
    def test_full_rank_equivalence_square(self, rng):
        layer = nn.LSTMLayer(6, 6)
        lr = factorize_lstm_layer(layer, 6)
        x = Tensor(rng.standard_normal((3, 2, 6)))
        o1, _ = layer(x)
        o2, _ = lr(x)
        assert np.allclose(o1.data, o2.data, atol=1e-3)

    def test_rank_clamped(self):
        layer = nn.LSTMLayer(4, 8)
        lr = factorize_lstm_layer(layer, 100)
        assert lr.rank == 4

    def test_biases_copied(self):
        layer = nn.LSTMLayer(5, 5)
        lr = factorize_lstm_layer(layer, 2)
        assert np.allclose(lr.bias_ih.data, layer.bias_ih.data)
        assert np.allclose(lr.bias_hh.data, layer.bias_hh.data)

    def test_per_gate_factorization(self, rng):
        # Each gate's U V^T must approximate that gate's slice.
        layer = nn.LSTMLayer(6, 6)
        lr = factorize_lstm_layer(layer, 6)
        h = 6
        for gate in range(4):
            w_gate = layer.weight_ih.data[gate * h : (gate + 1) * h]
            approx = lr.u_ih.data[gate] @ lr.vt_ih.data[gate]
            assert np.allclose(approx, w_gate, atol=1e-4)
