"""Convolution/pooling kernels: im2col round trips, equivalence with a naive
reference convolution, and gradient checks."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    check_gradients,
    col2im,
    conv2d,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)


def naive_conv2d(x, w, b, stride, pad):
    """Direct-loop reference convolution (gold standard for tests)."""
    n, c_in, h, wid = x.shape
    c_out, _, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out.astype(np.float32)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_stride_shape(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        cols = im2col(x, 2, 2, 2, 0)
        assert cols.shape == (16, 8)

    def test_identity_kernel_content(self, rng):
        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
        cols = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(4, 4), x[0, 0])

    def test_col2im_adjointness(self, rng):
        # <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float64)
        y = rng.standard_normal((2 * 4 * 4, 3 * 9)).astype(np.float64)
        lhs = (im2col(x, 3, 3, 1, 0).astype(np.float64) * y).sum()
        rhs = (x * col2im(y, x.shape, 3, 3, 1, 0)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        x = Tensor(rng.standard_normal((2, 3, 7, 7)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)) * 0.2)
        b = Tensor(rng.standard_normal(4) * 0.1)
        out = conv2d(x, w, b, stride=stride, padding=pad)
        ref = naive_conv2d(x.data, w.data, b.data, stride, pad)
        assert out.shape == ref.shape
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((2, 3, 1, 1)))
        out = conv2d(x, w, None)
        ref = np.einsum("oc,nchw->nohw", w.data[:, :, 0, 0], x.data)
        assert np.allclose(out.data, ref, atol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w, None)

    def test_grad_weight_and_bias(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.3, requires_grad=True)
        b = Tensor(rng.standard_normal(3) * 0.1, requires_grad=True)
        check_gradients(
            lambda: (conv2d(x, w, b, padding=1) ** 2).sum(), [w, b], rtol=2e-2, atol=2e-3
        )

    def test_grad_input(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.3)
        check_gradients(
            lambda: (conv2d(x, w, None, stride=2, padding=1) ** 2).sum(),
            [x],
            rtol=2e-2,
            atol=2e-3,
            max_bad_frac=0.04,  # fp32 finite-difference noise
        )

    def test_no_bias(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        w = Tensor(rng.standard_normal((2, 2, 3, 3)))
        out = conv2d(x, w, None, padding=1)
        assert out.shape == (1, 2, 4, 4)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_grad_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.allclose(x.grad[0, 0], expected)

    def test_avg_pool_grad_uniform(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_max_pool_gradcheck(self, rng):
        # Distinct values (a scaled permutation) avoid argmax ties; the /10
        # scale keeps the squared loss small so fp32 finite differences hold.
        x = Tensor(rng.permutation(2 * 3 * 4 * 4).astype(np.float32).reshape(2, 3, 4, 4) / 10.0,
                   requires_grad=True)
        check_gradients(lambda: (max_pool2d(x, 2) ** 2).sum(), [x], rtol=2e-2, atol=2e-2)

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)), requires_grad=True)
        check_gradients(lambda: (avg_pool2d(x, 2) ** 2).sum(), [x], rtol=2e-2, atol=2e-3)

    def test_stride_differs_from_kernel(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)))
        out = max_pool2d(x, 3, stride=2)
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.data.mean(axis=(2, 3)), atol=1e-6)
