"""The live gateway: HTTP wire format, streaming, shutdown, determinism.

No pytest-asyncio in the toolchain, so every async scenario runs inside
``asyncio.run`` from a synchronous test — which also mirrors how the CLI
drives the server.
"""

import asyncio
import json

import pytest

from repro import observability as obs
from repro.gateway import (
    GatewayServer,
    LoadClient,
    ProfileExecutor,
    TraceRequest,
    build_trace,
    summarize_records,
    trace_digest,
)
from repro.gateway import http as ghttp
from repro.serve import ArrivalSpec, BatchPolicy, LatencyProfile, ServeConfig


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.get_registry().reset()


def profile(ms=10.0):
    return LatencyProfile((1, 8), (ms / 1e3, ms / 1e3))


def config(slo_ms=500.0, max_batch=4, max_wait_ms=10.0, replicas=1):
    return ServeConfig(
        slo_s=slo_ms / 1e3,
        policy=BatchPolicy(max_batch, max_wait_ms / 1e3),
        replicas=replicas,
    )


async def _with_server(cfg, prof, fn):
    server = GatewayServer(ProfileExecutor(prof), cfg, port=0)
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.stop()


async def _raw_request(server, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    writer.write(ghttp.render_request(method, path, body, keep_alive=False))
    await writer.drain()
    response = await ghttp.read_response(reader)
    writer.close()
    return response


class TestHttpWireFormat:
    def test_request_roundtrip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(
                ghttp.render_request("POST", "/v1/infer", {"id": 3, "payload": 9})
            )
            reader.feed_eof()
            req = await ghttp.read_request(reader)
            assert req.method == "POST" and req.path == "/v1/infer"
            assert req.json() == {"id": 3, "payload": 9}
            assert req.keep_alive
            assert await ghttp.read_request(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_malformed_request_line(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"NONSENSE\r\n\r\n")
            reader.feed_eof()
            with pytest.raises(ghttp.HttpError) as e:
                await ghttp.read_request(reader)
            assert e.value.status == 400

        asyncio.run(scenario())

    def test_chunked_response_roundtrip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            head = ghttp.render_response(200, chunked=True)
            frames = ghttp.encode_chunk({"a": 1}) + ghttp.encode_chunk({"b": 2})
            reader.feed_data(head + frames + ghttp.LAST_CHUNK)
            reader.feed_eof()
            resp = await ghttp.read_response(reader)
            assert resp.status == 200 and resp.chunked
            lines = [json.loads(x) for x in resp.body.splitlines()]
            assert lines == [{"a": 1}, {"b": 2}]

        asyncio.run(scenario())


class TestGatewayEndpoints:
    def test_healthz_model_metrics_report(self):
        async def scenario(server):
            health = await _raw_request(server, "GET", "/healthz")
            assert health.status == 200 and health.json()["ok"] is True
            model = await _raw_request(server, "GET", "/v1/model")
            assert model.json()["executor"] == "profile"
            assert model.json()["max_batch_size"] == 4
            metrics = await _raw_request(server, "GET", "/metrics")
            assert set(metrics.json()) == {"counters", "gauges", "histograms"}
            report = await _raw_request(server, "GET", "/v1/report")
            assert report.json()["summary"]["n_requests"] == 0
            missing = await _raw_request(server, "GET", "/nope")
            assert missing.status == 404

        asyncio.run(_with_server(config(), profile(), scenario))

    def test_unary_infer_completes_and_echoes(self):
        async def scenario(server):
            resp = await _raw_request(
                server, "POST", "/v1/infer", {"id": 0, "payload": 42}
            )
            assert resp.status == 200
            body = resp.json()
            assert body["status"] == "completed"
            assert body["result"] == {"echo": 42, "step": 0}
            assert body["slo_ok"] is True and body["batch"] == 0
            return server.report()

        report = asyncio.run(_with_server(config(), profile(), scenario))
        assert report.n_completed == 1 and report.n_shed == 0

    def test_duplicate_rid_rejected(self):
        async def scenario(server):
            first = await _raw_request(server, "POST", "/v1/infer", {"id": 7})
            assert first.status == 200
            second = await _raw_request(server, "POST", "/v1/infer", {"id": 7})
            assert second.status == 400

        asyncio.run(_with_server(config(), profile(), scenario))

    def test_batching_rides_one_forward(self):
        """Concurrent requests inside one max_wait window share a batch."""

        async def scenario(server):
            client = LoadClient("127.0.0.1", server.port, timeout_s=10.0)
            trace = [TraceRequest(rid=i, at_s=0.0, payload=i) for i in range(4)]
            records = await client.run_open(trace)
            assert all(r.ok for r in records)
            return server.report()

        report = asyncio.run(_with_server(config(max_wait_ms=30.0), profile(), scenario))
        assert len(report.batches) < report.n_completed  # at least one shared batch


class TestStreaming:
    def test_partial_results_before_final(self):
        """Acceptance: a streaming client observes partial results strictly
        before the final frame of its own response."""

        async def scenario(server):
            client = LoadClient("127.0.0.1", server.port, timeout_s=10.0)
            trace = [
                TraceRequest(rid=0, at_s=0.0, payload=17, steps=4),
                TraceRequest(rid=1, at_s=0.0, payload=18, steps=4),
            ]
            records = await client.run_open(trace)
            assert len(records) == 2 and all(r.ok for r in records)
            for r in records:
                assert len(r.chunk_times) == 4
                assert r.chunk_times[0] < r.final_s  # partials led the final
                assert r.chunk_times == sorted(r.chunk_times)
            summary = summarize_records(records, duration_s=0.5)
            assert summary["streamed"] == len(records)
            assert summary["stream_lead_ms_max"] > 0.0

        asyncio.run(_with_server(config(slo_ms=2000.0), profile(5.0), scenario))

    def test_partials_arrive_before_batch_completes(self):
        """The first chunk lands while later steps are still computing: its
        receive time is well under the full batch service time."""

        async def scenario(server):
            client = LoadClient("127.0.0.1", server.port, timeout_s=10.0)
            trace = [TraceRequest(rid=0, at_s=0.0, payload=5, steps=5)]
            records = await client.run_open(trace)
            (r,) = records
            assert r.ok and len(r.chunk_times) == 5
            # 5 steps x 20ms each: the first partial must beat the final by
            # at least a couple of step times.
            assert r.final_s - r.chunk_times[0] > 0.04

        asyncio.run(_with_server(config(slo_ms=2000.0), profile(20.0), scenario))


class TestGracefulShutdown:
    def test_queued_requests_shed_with_shutdown_reason(self):
        """stop() during a deep queue: in-flight work completes, queued
        requests come back 503 shed_shutdown, and the report accounts every
        request by reason."""

        async def scenario():
            prof = profile(80.0)  # slow service so the queue stays deep
            server = GatewayServer(
                ProfileExecutor(prof), config(slo_ms=5000.0, max_batch=2), port=0
            )
            await server.start()
            client = LoadClient("127.0.0.1", server.port, timeout_s=10.0)
            trace = [TraceRequest(rid=i, at_s=0.0, payload=i) for i in range(6)]
            send = asyncio.ensure_future(client.run_open(trace))
            await asyncio.sleep(0.1)  # first batch in flight, rest queued
            await server.stop()
            records = await send
            report = server.report()
            return records, report

        records, report = asyncio.run(scenario())
        statuses = {r.rid: r.status for r in records}
        assert report.n_requests == len(records) == 6
        shed = report.shed_by_reason()
        assert shed["shutdown"] >= 1
        assert shed["shutdown"] + report.n_completed == 6
        # Clients observed exactly what the report accounted.
        for outcome in report.outcomes:
            assert statuses[outcome.rid] == outcome.status
        assert report.summary()["n_shed_shutdown"] == shed["shutdown"]

    def test_arrival_during_drain_is_accounted(self):
        async def scenario():
            server = GatewayServer(ProfileExecutor(profile()), config(), port=0)
            await server.start()
            await server.stop()
            # The listener is closed after stop(); an in-flight connection
            # opened before close would get 503 shed_shutdown.  Simulate the
            # late-arrival path directly.
            assert server._stopping
            return server.report()

        report = asyncio.run(scenario())
        assert report.n_requests == 0


class TestTraceDeterminism:
    def test_trace_pure_function_of_seed(self):
        spec = ArrivalSpec(rate_rps=150, duration_s=2.0, process="bursty", seed=13)
        a = build_trace(spec, steps=3)
        b = build_trace(spec, steps=3)
        assert a == b
        assert trace_digest(a) == trace_digest(b)
        assert a != build_trace(ArrivalSpec(rate_rps=150, duration_s=2.0, seed=14))

    def test_payload_keyed_on_rid_not_consumption(self):
        """Payload draws are counter-keyed on rid: a longer trace's common
        prefix carries identical ids, offsets and payloads."""
        short = build_trace(ArrivalSpec(rate_rps=100, duration_s=1.0, seed=4))
        long = build_trace(ArrivalSpec(rate_rps=100, duration_s=2.0, seed=4))
        assert long[: len(short)] == short

    def test_rid_offset_shifts_ids_deterministically(self):
        """rid_offset gives a second trace a disjoint id range (server
        request ids are unique per lifetime) without touching arrivals."""
        spec = ArrivalSpec(rate_rps=100, duration_s=1.0, seed=4)
        base = build_trace(spec)
        shifted = build_trace(spec, rid_offset=1000)
        assert [t.rid for t in shifted] == [t.rid + 1000 for t in base]
        assert [t.at_s for t in shifted] == [t.at_s for t in base]
        assert shifted == build_trace(spec, rid_offset=1000)  # still pure

    def test_trace_independent_of_server_scheduling(self):
        """Replaying the same trace against two differently-scheduled
        servers offers byte-identical load (ids, payloads, steps)."""

        async def offered(ms):
            async def scenario(server):
                client = LoadClient("127.0.0.1", server.port, timeout_s=10.0)
                trace = build_trace(ArrivalSpec(rate_rps=120, duration_s=0.2, seed=9))
                await client.run_open(trace)
                return trace

            return await _with_server(config(), profile(ms), scenario)

        t_fast = asyncio.run(offered(1.0))
        t_slow = asyncio.run(offered(30.0))
        assert t_fast == t_slow
        assert trace_digest(t_fast) == trace_digest(t_slow)

    def test_closed_loop_covers_trace(self):
        async def scenario(server):
            client = LoadClient("127.0.0.1", server.port, timeout_s=10.0)
            trace = build_trace(ArrivalSpec(rate_rps=120, duration_s=0.1, seed=6))
            records = await client.run_closed(trace, workers=2)
            assert sorted(r.rid for r in records) == [t.rid for t in trace]
            assert all(r.ok for r in records)

        asyncio.run(_with_server(config(slo_ms=2000.0), profile(2.0), scenario))
