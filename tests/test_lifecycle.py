"""Unit tests for ``repro.lifecycle`` — monitor, scheduler, pipeline,
promotion registry, deployment driver, and the CLI surface.

The benchmark (``benchmarks/test_lifecycle.py``) exact-gates the full
seeded pipeline; these tests pin the component contracts: snapshot
digests are pure functions of the weights, the scheduler's hysteresis
band holds/drifts exactly at the boundary, promotion versions densely
and round-trips per-layer architectures, and the CLI wires it all
together with the documented exit codes.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import build_hybrid, eligible_paths
from repro.core.layers import LowRankConv2d, LowRankLinear
from repro.lifecycle import (
    DeploymentConfig,
    LifecycleConfig,
    LifecycleConfigError,
    PromotionError,
    PromotionRegistry,
    RankPolicy,
    RankScheduler,
    SpectrumMonitor,
    SpectrumSnapshot,
    run_deployment,
    run_lifecycle,
)
from repro.serve import default_registry, hybrid_config_for
from repro.serve.registry import build_model

TINY = LifecycleConfig(
    model="mlp",
    width=0.25,
    seed=3,
    train_samples=64,
    val_samples=16,
    batch_size=16,
    warmup_epochs=1,
    total_epochs=3,
    policy=RankPolicy(energy_threshold=0.7, max_ratio=0.5, hysteresis=1),
)


@pytest.fixture(scope="module")
def tiny_run():
    return run_lifecycle(TINY)


# -- config validation --------------------------------------------------


def test_config_rejects_bad_values():
    with pytest.raises(LifecycleConfigError):
        LifecycleConfig(model="lstm")  # sequence zoo not trainable here
    with pytest.raises(LifecycleConfigError):
        LifecycleConfig(warmup_epochs=0)
    with pytest.raises(LifecycleConfigError):
        LifecycleConfig(warmup_epochs=3, total_epochs=2)
    with pytest.raises(LifecycleConfigError):
        LifecycleConfig(recheck_every=0)
    with pytest.raises(LifecycleConfigError):
        LifecycleConfig(train_samples=64, batch_size=32, workers=4)


def test_policy_rejects_bad_values():
    with pytest.raises(LifecycleConfigError):
        RankPolicy(energy_threshold=0.0)
    with pytest.raises(LifecycleConfigError):
        RankPolicy(min_rank=0)
    with pytest.raises(LifecycleConfigError):
        RankPolicy(max_ratio=1.5)
    with pytest.raises(LifecycleConfigError):
        RankPolicy(hysteresis=-1)


def test_config_digest_and_run_id_are_stable():
    a, b = LifecycleConfig(seed=1), LifecycleConfig(seed=1)
    assert a.digest() == b.digest()
    assert a.run_id == b.run_id and a.run_id.startswith("lc-")
    assert a.digest() != LifecycleConfig(seed=2).digest()


# -- monitor ------------------------------------------------------------


def test_snapshot_digest_is_pure_function_of_weights():
    np.random.seed(0)
    model = build_model("mlp", 4, 0.25)
    m1, m2 = SpectrumMonitor(), SpectrumMonitor()
    s1 = m1.observe(model, epoch=0, phase="warmup")
    s2 = m2.observe(model, epoch=0, phase="warmup")
    assert s1.digest() == s2.digest()
    assert s1.as_dict()["n_layers"] == len(s1.spectra) > 0
    # Any weight change must change the digest.
    model.state_dict()[next(iter(model.state_dict()))][...] += 1.0
    assert m1.observe(model, 0, "warmup").digest() != s1.digest()


def test_monitor_measures_effective_weights_of_hybrids():
    """A freshly factorized model's spectra come from the materialized
    U V^T product, so the truncated spectrum has exactly `rank` nonzeros."""
    np.random.seed(0)
    model = build_model("mlp", 4, 0.25)
    hybrid, report = build_hybrid(model, hybrid_config_for("mlp", model, 0.25))
    snap = SpectrumMonitor().observe(hybrid, epoch=0, phase="lowrank")
    ranks = dict(report.replaced)
    for path, rank in ranks.items():
        sv = np.asarray(snap.spectra[path])
        assert int((sv > 1e-6).sum()) <= rank


# -- scheduler ----------------------------------------------------------


def _snap(index, ranks_to_sv):
    """A synthetic snapshot: each path gets `r` unit singular values."""
    return SpectrumSnapshot(
        index=index,
        epoch=index,
        phase="lowrank",
        spectra={path: (1.0,) * r for path, r in ranks_to_sv.items()},
    )


def test_scheduler_initial_adopt_then_hysteresis():
    policy = RankPolicy(energy_threshold=0.999, hysteresis=2)
    sched = RankScheduler(policy=policy, eligible=("a", "b"))

    first = sched.decide(_snap(0, {"a": 10, "b": 10, "ignored": 10}))
    assert first.reason == "initial" and first.refactorize
    assert sched.current == {"a": 10, "b": 10}  # eligible paths only

    # Within the band: hold, keep the current map.
    hold = sched.decide(_snap(1, {"a": 9, "b": 11}))
    assert hold.reason == "hold" and not hold.refactorize
    assert sched.current == {"a": 10, "b": 10}

    # One layer beyond the band: drift, adopt the FULL proposal.
    drift = sched.decide(_snap(2, {"a": 7, "b": 11}))
    assert drift.reason == "drift" and drift.refactorize
    assert drift.drifted == ("a",)
    assert sched.current == {"a": 7, "b": 11}


def test_scheduler_clips_to_policy_caps():
    policy = RankPolicy(energy_threshold=0.999, min_rank=3, max_ratio=0.5)
    sched = RankScheduler(policy=policy, eligible=("a", "b"))
    proposal = sched.propose(_snap(0, {"a": 1, "b": 20}))
    assert proposal == {"a": 3, "b": 10}  # floor and 0.5·full cap


# -- pipeline -----------------------------------------------------------


def test_pipeline_is_deterministic(tiny_run):
    again = run_lifecycle(TINY)
    assert tiny_run.spectra_digest == again.spectra_digest
    assert tiny_run.rank_map == again.rank_map
    assert tiny_run.timeline_digest() == again.timeline_digest()
    assert tiny_run.run_id == TINY.run_id


def test_pipeline_events_and_accounting(tiny_run):
    kinds = [e["event"] for e in tiny_run.events]
    assert kinds.count("factorize") == 1
    assert kinds[-1] == "final_eval"
    assert tiny_run.params_factorized < tiny_run.params_full
    assert set(tiny_run.rank_map) == set(
        eligible_paths(
            build_model(TINY.model, TINY.num_classes, TINY.width),
            hybrid_config_for(
                TINY.model,
                build_model(TINY.model, TINY.num_classes, TINY.width),
                TINY.rank_ratio,
            ),
        )
    )
    # The final model really is the rank map's architecture.
    deployed = {
        path: int(layer.rank)
        for path, layer in tiny_run.model.named_modules()
        if isinstance(layer, (LowRankConv2d, LowRankLinear))
    }
    assert deployed == tiny_run.rank_map


def test_pipeline_ddp_records_comm_accounting():
    config = LifecycleConfig(
        model="mlp",
        seed=3,
        train_samples=64,
        val_samples=16,
        batch_size=16,
        warmup_epochs=1,
        total_epochs=2,
        policy=RankPolicy(energy_threshold=0.7, max_ratio=0.5, hysteresis=1),
        workers=2,
    )
    run = run_lifecycle(config)
    epochs = [e for e in run.history if e["event"] == "epoch"]
    assert all("comm_seconds" in e and "bytes_per_iteration" in e for e in epochs)
    assert run.timeline_digest() == run_lifecycle(config).timeline_digest()


# -- promotion registry -------------------------------------------------


def test_registry_versions_densely_with_lineage(tmp_path, tiny_run):
    reg = PromotionRegistry(tmp_path / "reg")
    v1 = reg.promote(tiny_run)
    v2 = reg.promote(tiny_run, name="special")
    v3 = reg.promote(tiny_run)
    assert (v1.name, v1.version) == (TINY.model, 1)
    assert (v2.name, v2.version) == ("special", 1)
    assert (v3.name, v3.version) == (TINY.model, 2)
    assert reg.names() == ("mlp", "special")
    assert reg.latest(TINY.model).version == 2
    assert reg.get(TINY.model, 1).lineage["parent_run"] == tiny_run.run_id
    assert v1.rank_map == tiny_run.rank_map
    with pytest.raises(PromotionError):
        reg.get(TINY.model, 99)
    with pytest.raises(PromotionError):
        reg.latest("nope")
    # A fresh handle on the same directory sees the same index.
    assert len(PromotionRegistry(tmp_path / "reg").records()) == 3


def test_promote_artifact_requires_rank_map(tmp_path, tiny_run):
    reg = PromotionRegistry(tmp_path / "reg")
    with pytest.raises(PromotionError):
        reg.promote_artifact(tmp_path / "missing.npz", {"rank_map": {}})
    from repro.utils import save_checkpoint

    ckpt = tmp_path / "run.npz"
    save_checkpoint(ckpt, tiny_run.model)
    with pytest.raises(PromotionError):
        reg.promote_artifact(ckpt, {"model": "mlp"})  # no rank_map
    rec = reg.promote_artifact(ckpt, tiny_run.lineage())
    assert rec.version == 1 and rec.rank_map == tiny_run.rank_map


def test_materialize_roundtrips_ranks_and_weights(tmp_path, tiny_run):
    reg = PromotionRegistry(tmp_path / "reg")
    record = reg.promote(tiny_run)
    served = reg.materialize(record)
    got = {
        path: int(layer.rank)
        for path, layer in served.model.named_modules()
        if isinstance(layer, (LowRankConv2d, LowRankLinear))
    }
    assert got == tiny_run.rank_map
    want = tiny_run.model.state_dict()
    have = served.model.state_dict()
    assert all(np.array_equal(want[k], have[k]) for k in want)
    # Digests (not the bulky rank map) ride on the served lineage.
    assert served.lineage["parent_run"] == tiny_run.run_id
    assert "rank_map" not in served.lineage


def test_materialize_threads_rank_overrides():
    registry = default_registry()
    overrides = {"fc1": 5, "fc2": 3}
    served = registry.materialize(
        "mlp", "factorized", rank_overrides=overrides
    )
    got = {
        path: int(layer.rank)
        for path, layer in served.model.named_modules()
        if isinstance(layer, (LowRankConv2d, LowRankLinear))
    }
    for path, rank in overrides.items():
        if path in got:
            assert got[path] == rank
    # Distinct overrides must not collide in the cache.
    other = registry.materialize("mlp", "factorized", rank_overrides={"fc1": 7})
    assert other is not served


# -- deployment ---------------------------------------------------------


def test_deployment_promotes_and_rolls_back(tmp_path, tiny_run):
    record = PromotionRegistry(tmp_path / "reg").promote(tiny_run)
    healthy = run_deployment(record, DeploymentConfig(seed=3))
    assert healthy.promoted and healthy.final_fraction == 1.0
    degraded = run_deployment(
        record, DeploymentConfig(seed=3, degrade_factor=40.0)
    )
    assert degraded.status == "rolled_back" and degraded.final_fraction == 0.0
    assert healthy.digest() != degraded.digest()
    with pytest.raises(ValueError):
        DeploymentConfig(degrade_factor=0.0)


# -- CLI ----------------------------------------------------------------


def test_cli_run_promote_deploy(tmp_path, capsys):
    out = tmp_path / "run.json"
    ckpt = tmp_path / "run.npz"
    reg = tmp_path / "registry"
    rc = main(
        [
            "lifecycle", "run", "--model", "mlp", "--seed", "3",
            "--samples", "64", "--val-samples", "16", "--batch-size", "16",
            "--warmup-epochs", "1", "--epochs", "3",
            "--energy-threshold", "0.7", "--max-ratio", "0.5",
            "--hysteresis", "1",
            "--checkpoint", str(ckpt), "--out", str(out),
        ]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "timeline digest" in text
    record_file = json.loads(out.read_text())
    assert record_file["lineage"]["rank_map"]
    assert record_file["summary"]["timeline_digest"]

    rc = main(
        [
            "lifecycle", "promote", "--run", str(out),
            "--registry-dir", str(reg),
        ]
    )
    assert rc == 0
    assert "v1" in capsys.readouterr().out

    rc = main(
        [
            "lifecycle", "deploy", "--registry-dir", str(reg),
            "--name", "mlp", "--out", str(tmp_path / "deploy.json"),
        ]
    )
    assert rc == 0
    assert "status: promoted" in capsys.readouterr().out
    report = json.loads((tmp_path / "deploy.json").read_text())
    assert report["status"] == "promoted"

    # Injected regression: rollback, nonzero exit unless waived.
    rc = main(
        [
            "lifecycle", "deploy", "--registry-dir", str(reg),
            "--name", "mlp", "--degrade-factor", "40",
        ]
    )
    assert rc == 1
    rc = main(
        [
            "lifecycle", "deploy", "--registry-dir", str(reg),
            "--name", "mlp", "--degrade-factor", "40", "--allow-rollback",
        ]
    )
    assert rc == 0


def test_cli_bad_config_exits_2(tmp_path, capsys):
    rc = main(["lifecycle", "run", "--model", "mlp", "--warmup-epochs", "0"])
    assert rc == 2
    rc = main(
        [
            "lifecycle", "promote", "--run", str(tmp_path / "nope.json"),
            "--registry-dir", str(tmp_path / "reg"),
        ]
    )
    assert rc == 2
    rc = main(
        [
            "lifecycle", "deploy", "--registry-dir", str(tmp_path / "reg"),
            "--name", "ghost",
        ]
    )
    assert rc == 2
