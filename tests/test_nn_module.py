"""Module/Parameter registration, iteration, state dicts, submodule paths."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(4, 3)
        self.bn = nn.BatchNorm1d(3)
        self.scale = Parameter(np.ones(3, dtype=np.float32))

    def forward(self, x):
        return self.bn(self.lin(x)) * self.scale


class TestRegistration:
    def test_parameter_registered(self):
        m = Toy()
        names = [n for n, _ in m.named_parameters()]
        assert "scale" in names
        assert "lin.weight" in names
        assert "bn.weight" in names

    def test_module_registered(self):
        m = Toy()
        assert "lin" in m._modules and "bn" in m._modules

    def test_buffers_registered(self):
        m = Toy()
        names = [n for n, _ in m.named_buffers()]
        assert "bn.running_mean" in names and "bn.running_var" in names

    def test_reassignment_with_plain_value_unregisters(self):
        m = Toy()
        m.scale = 5
        assert "scale" not in [n for n, _ in m.named_parameters()]

    def test_replacing_module_updates_registry(self):
        m = Toy()
        m.lin = nn.Linear(4, 3, bias=False)
        assert "lin.bias" not in [n for n, _ in m.named_parameters()]

    def test_num_parameters(self):
        m = nn.Linear(4, 3)
        assert m.num_parameters() == 4 * 3 + 3

    def test_modules_iteration_includes_self_and_children(self):
        m = Toy()
        mods = list(m.modules())
        assert m in mods and m.lin in mods and m.bn in mods


class TestSubmodulePaths:
    def test_get_submodule(self):
        m = Toy()
        assert m.get_submodule("lin") is m.lin
        assert m.get_submodule("") is m

    def test_set_submodule(self):
        m = Toy()
        new = nn.Linear(4, 3)
        m.set_submodule("lin", new)
        assert m.lin is new

    def test_nested_paths_in_sequential(self):
        s = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 2)))
        inner = s.get_submodule("1.0")
        assert isinstance(inner, nn.Linear)
        s.set_submodule("1.0", nn.Linear(2, 3))
        assert s.get_submodule("1.0").out_features == 3


class TestTrainEval:
    def test_train_eval_propagates(self):
        m = Toy()
        m.eval()
        assert not m.training and not m.bn.training
        m.train()
        assert m.training and m.bn.training


class TestStateDict:
    def test_roundtrip_exact(self, rng):
        m1, m2 = Toy(), Toy()
        # Touch BN running stats so buffers are non-trivial.
        m1(__import__("repro.tensor", fromlist=["Tensor"]).Tensor(rng.standard_normal((8, 4))))
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2 and np.allclose(p1.data, p2.data)
        for (n1, b1), (n2, b2) in zip(m1.named_buffers(), m2.named_buffers()):
            assert n1 == n2 and np.allclose(b1, b2)

    def test_state_dict_is_a_copy(self):
        m = Toy()
        sd = m.state_dict()
        sd["scale"][...] = 99
        assert not np.allclose(m.scale.data, 99)

    def test_shape_mismatch_raises(self):
        m = Toy()
        sd = m.state_dict()
        sd["lin.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_unexpected_key_raises_when_strict(self):
        m = Toy()
        sd = m.state_dict()
        sd["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_missing_key_raises_when_strict(self):
        m = Toy()
        sd = m.state_dict()
        del sd["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_non_strict_allows_partial(self):
        m = Toy()
        sd = {"scale": np.full(3, 2.0, dtype=np.float32)}
        m.load_state_dict(sd, strict=False)
        assert np.allclose(m.scale.data, 2.0)


class TestZeroGrad:
    def test_clears_all(self, rng):
        from repro.tensor import Tensor

        m = Toy()
        out = m(Tensor(rng.standard_normal((4, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestParameterFlags:
    def test_norm_params_flagged_no_decay(self):
        m = Toy()
        assert m.bn.weight.no_decay and m.bn.bias.no_decay
        assert not m.lin.weight.no_decay
