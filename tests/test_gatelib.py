"""The shared regression-gate harness behind benchmarks/check_*_regression.py."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load(name: str):
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod  # dataclasses resolve annotations via sys.modules
    spec.loader.exec_module(mod)
    return mod


gatelib = _load("gatelib")


class TestDeepDiff:
    def test_equal(self):
        failures = []
        gatelib.deep_diff({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}, "s", failures)
        assert failures == []

    def test_leaf_drift_and_missing_keys(self):
        failures = []
        gatelib.deep_diff({"a": 2, "new": 1}, {"a": 1, "gone": 3}, "s", failures)
        assert any("s.a: 2 != baseline 1" in f for f in failures)
        assert any("s.gone: missing from current run" in f for f in failures)
        assert any("s.new: not in baseline (new key)" in f for f in failures)

    def test_list_length(self):
        failures = []
        gatelib.deep_diff([1, 2], [1, 2, 3], "s", failures)
        assert failures == ["s: length 2 != baseline 3"]


class TestFieldRules:
    def test_exact_fields(self):
        failures = []
        rule = gatelib.ExactFields(("n", "sizes"), note="structure changed")
        rule.check("sc", {"n": 2, "sizes": [1]}, {"n": 1, "sizes": [1]}, 0.2, failures)
        assert failures == ["sc.n: 2 != baseline 1 (structure changed)"]

    def test_exact_fields_skips_absent_everywhere(self):
        failures = []
        gatelib.ExactFields(("missing",)).check("sc", {}, {}, 0.2, failures)
        assert failures == []

    def test_band_fields_two_sided(self):
        rule = gatelib.BandFields(("t",), note="modeled time drifted")
        for cur, n_fail in ((1.0, 0), (1.19, 0), (1.21, 1), (0.79, 1)):
            failures = []
            rule.check("sc", {"t": cur}, {"t": 1.0}, 0.2, failures)
            assert len(failures) == n_fail, (cur, failures)

    def test_band_fields_upper_only(self):
        rule = gatelib.BandFields(("t",), mode="upper")
        for cur, n_fail in ((0.1, 0), (1.19, 0), (1.21, 1)):
            failures = []
            rule.check("sc", {"t": cur}, {"t": 1.0}, 0.2, failures)
            assert len(failures) == n_fail, (cur, failures)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestRunGate:
    def make_gate(self, **kw):
        defaults = dict(
            name="demo",
            default_current="BENCH_demo.json",
            default_baseline="demo_baseline.json",
            rules=(gatelib.ExactFields(("n",)),),
            default_threshold=0.20,
        )
        defaults.update(kw)
        return gatelib.Gate(**defaults)

    def test_ok_run(self, tmp_path, capsys):
        art = {"scenarios": {"a": {"n": 1}}}
        rc = gatelib.run_gate(
            self.make_gate(),
            ["--current", _write(tmp_path, "c.json", art),
             "--baseline", _write(tmp_path, "b.json", art)],
        )
        assert rc == 0
        assert "demo regression gate: 1 scenarios within 20% of baseline" in (
            capsys.readouterr().out
        )

    def test_failure_report(self, tmp_path, capsys):
        rc = gatelib.run_gate(
            self.make_gate(),
            ["--current", _write(tmp_path, "c.json", {"scenarios": {"a": {"n": 2}}}),
             "--baseline", _write(tmp_path, "b.json", {"scenarios": {"a": {"n": 1}}})],
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 failure(s) across 1 scenarios" in out
        assert "  FAIL a.n: 2 != baseline 1" in out

    def test_missing_file_exit_2(self, tmp_path, capsys):
        rc = gatelib.run_gate(
            self.make_gate(),
            ["--current", str(tmp_path / "nope.json"),
             "--baseline", str(tmp_path / "also-nope.json")],
        )
        assert rc == 2
        assert "missing" in capsys.readouterr().err

    def test_missing_scenario(self, tmp_path):
        rc = gatelib.run_gate(
            self.make_gate(),
            ["--current", _write(tmp_path, "c.json", {"scenarios": {}}),
             "--baseline", _write(tmp_path, "b.json", {"scenarios": {"a": {"n": 1}}})],
        )
        assert rc == 1

    def test_skip_invariants_headline(self, tmp_path, capsys):
        gate = self.make_gate(
            skip=lambda name: name.startswith("measured_"),
            invariants=lambda name, sc: (
                [f"{name}: bad rate"] if sc.get("rate", 0) > 1 else []
            ),
            headline=lambda current: (
                [] if "a" in current["scenarios"] else ["headline: a missing"]
            ),
        )
        current = {"scenarios": {"a": {"n": 1}, "measured_x": {"n": 99, "rate": 2}}}
        baseline = {"scenarios": {"a": {"n": 1}, "measured_x": {"n": 1}}}
        rc = gatelib.run_gate(
            gate,
            ["--current", _write(tmp_path, "c.json", current),
             "--baseline", _write(tmp_path, "b.json", baseline)],
        )
        out = capsys.readouterr().out
        # measured_x's exact-field drift was skipped, but its invariant fired.
        assert rc == 1
        assert "measured_x.n" not in out
        assert "measured_x: bad rate" in out

    def test_custom_walk_and_ok_line(self, tmp_path, capsys):
        gate = self.make_gate(
            section="records",
            item_word="records",
            custom=lambda cur, base, t: (
                [] if len(cur["records"]) == len(base["records"]) else ["count drift"]
            ),
            ok_line=lambda n, t: f"demo gate: {n} records fine",
        )
        art = {"records": [1, 2]}
        rc = gatelib.run_gate(
            gate,
            ["--current", _write(tmp_path, "c.json", art),
             "--baseline", _write(tmp_path, "b.json", art)],
        )
        assert rc == 0
        assert "demo gate: 2 records fine" in capsys.readouterr().out


@pytest.mark.parametrize("script", [
    "check_overlap_regression",
    "check_faults_regression",
    "check_serving_regression",
    "check_cluster_regression",
    "check_observability_regression",
    "check_kernels_regression",
])
def test_every_gate_script_is_a_thin_config(script):
    """All six gate scripts share the harness: a Gate instance, no local
    diff loop (the consolidation this layer exists for)."""
    mod = _load(script)
    assert isinstance(mod.GATE, gatelib.Gate)
    source = (BENCH_DIR / f"{script}.py").read_text()
    assert "deep_diff" not in source.replace("from gatelib import", ""), (
        f"{script} re-implements diff logic instead of using gatelib"
    )
    assert "argparse" not in source, f"{script} re-implements CLI plumbing"


def test_gate_self_check_against_committed_baselines():
    """Every committed baseline must pass its own gate when replayed as
    the current artifact (the identity run is the weakest guarantee)."""
    baselines = {
        "check_overlap_regression": "overlap_baseline.json",
        "check_faults_regression": "faults_baseline.json",
        "check_cluster_regression": "cluster_baseline.json",
        "check_observability_regression": "observability_baseline.json",
        "check_kernels_regression": "kernels_baseline.json",
    }
    for script, baseline in baselines.items():
        mod = _load(script)
        path = str(BENCH_DIR / "baselines" / baseline)
        rc = gatelib.run_gate(mod.GATE, ["--current", path, "--baseline", path])
        assert rc == 0, f"{script}: committed baseline fails its own gate"
