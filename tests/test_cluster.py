"""The cluster control plane: host model, bin-packing placement
(hypothesis properties), seeded scenarios, scaling policies, the
autoscaler loop, and canary rollouts.

The determinism tests pin the PR's acceptance criterion — same seed and
config produce the same windowed timeline and digest across invocations —
and the oscillation tests pin the hysteresis claim on the event timeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability as obs
from repro.cluster import (
    CanaryConfig,
    ClusterAutoscaler,
    ClusterConfigError,
    ClusterScenario,
    Host,
    HostSpec,
    LoadPhase,
    PoolConfig,
    ReplicaSpec,
    ShedRatePolicy,
    TargetUtilizationPolicy,
    WindowStats,
    lower_bound_hosts,
    make_policy,
    next_fit,
    pack,
    parse_phases,
    replica_spec_for,
    route_arrivals,
    run_canary,
)
from repro.serve import LatencyProfile


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.get_registry().reset()


# Pinned measurement-derived profiles (same tables the serving benchmark
# pins), so every simulator-backed test here is machine-independent.
BATCHES = (1, 2, 4, 8, 16, 32)
FULL = LatencyProfile(BATCHES, (0.0047, 0.0074, 0.0124, 0.0212, 0.0392, 0.0769))
FACT = LatencyProfile(BATCHES, (0.0043, 0.0064, 0.0119, 0.0205, 0.0371, 0.0721))

HOST = HostSpec(mem_bytes=12_000_000, compute_rps=2000.0)
FULL_REPLICA = ReplicaSpec("vgg19", "full", 5_151_184, FULL.capacity_rps())
FACT_REPLICA = ReplicaSpec("vgg19", "factorized", 2_103_760, FACT.capacity_rps())


def make_pool(
    profile=FACT,
    replica=FACT_REPLICA,
    policy=None,
    name="pool",
    **kwargs,
):
    return PoolConfig(
        name=name,
        replica=replica,
        profile=profile,
        slo_s=0.15,
        policy=policy or ShedRatePolicy(target=0.02),
        **kwargs,
    )


# ---------------------------------------------------------------------------


class TestHostModel:
    def test_spec_validation(self):
        with pytest.raises(ClusterConfigError):
            HostSpec(mem_bytes=0, compute_rps=100.0)
        with pytest.raises(ClusterConfigError):
            HostSpec(mem_bytes=100, compute_rps=0.0)
        with pytest.raises(ClusterConfigError):
            ReplicaSpec("m", "full", mem_bytes=0, capacity_rps=1.0)

    def test_place_updates_budgets(self):
        host = Host(index=0, spec=HOST)
        host.place(FACT_REPLICA)
        assert host.mem_used == FACT_REPLICA.mem_bytes
        assert host.mem_free == HOST.mem_bytes - FACT_REPLICA.mem_bytes
        assert host.count_of("vgg19:factorized") == 1

    def test_place_refuses_overflow(self):
        tiny = HostSpec(mem_bytes=FACT_REPLICA.mem_bytes, compute_rps=2000.0)
        host = Host(index=0, spec=tiny)
        host.place(FACT_REPLICA)
        with pytest.raises(ValueError):
            host.place(FACT_REPLICA)

    def test_replica_spec_for_uses_exact_accounting(self):
        from repro.serve import default_registry

        served = default_registry().materialize("mlp", "full", width=0.25)
        spec = replica_spec_for(served, FACT)
        assert spec.mem_bytes == served.params * 4
        assert spec.capacity_rps == pytest.approx(FACT.capacity_rps())
        assert spec.key == "mlp:full"


# -- bin-packing properties -------------------------------------------------

replica_lists = st.lists(
    st.builds(
        ReplicaSpec,
        model=st.sampled_from(["a", "b", "c"]),
        variant=st.sampled_from(["full", "factorized"]),
        mem_bytes=st.integers(min_value=1, max_value=120),
        capacity_rps=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)
host_specs = st.builds(
    HostSpec,
    mem_bytes=st.integers(min_value=1, max_value=100),
    compute_rps=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
)


class TestPlacementProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        replicas=replica_lists,
        host=host_specs,
        policy=st.sampled_from(["ffd", "best_fit", "spread"]),
    )
    def test_no_host_over_budget(self, replicas, host, policy):
        result = pack(replicas, host, policy=policy)
        for h in result.hosts:
            assert sum(r.mem_bytes for r in h.replicas) <= host.mem_bytes
            assert sum(r.capacity_rps for r in h.replicas) <= host.compute_rps + 1e-9
            assert h.mem_used == sum(r.mem_bytes for r in h.replicas)

    @settings(max_examples=150, deadline=None)
    @given(
        replicas=replica_lists,
        host=host_specs,
        policy=st.sampled_from(["ffd", "best_fit", "spread"]),
    )
    def test_every_replica_placed_or_rejected(self, replicas, host, policy):
        result = pack(replicas, host, policy=policy)
        assert result.n_placed + len(result.rejected) == len(replicas)
        # A rejected replica with no max_hosts cap must genuinely not fit
        # even an empty host — rejection is never silent capacity loss.
        for r in result.rejected:
            assert r.mem_bytes > host.mem_bytes or r.capacity_rps > host.compute_rps

    @settings(max_examples=100, deadline=None)
    @given(replicas=replica_lists, host=host_specs, seed=st.integers(0, 2**16))
    def test_input_order_is_irrelevant(self, replicas, host, seed):
        rng = np.random.default_rng(seed)
        shuffled = list(replicas)
        rng.shuffle(shuffled)
        a = pack(replicas, host).as_dict()
        b = pack(shuffled, host).as_dict()
        assert a == b

    @settings(max_examples=150, deadline=None)
    @given(replicas=replica_lists, host=host_specs)
    def test_ffd_never_beats_next_fit_baseline(self, replicas, host):
        """On the same decreasing order, keeping every host open (first
        fit) can only do as well or better than the one-open-host naive
        packer — the classic FF <= NF dominance."""
        ffd = pack(replicas, host, policy="ffd")
        naive = next_fit(replicas, host)
        assert ffd.n_hosts <= naive.n_hosts
        assert ffd.n_placed == naive.n_placed

    @settings(max_examples=100, deadline=None)
    @given(
        replicas=replica_lists,
        host=host_specs,
        policy=st.sampled_from(["ffd", "best_fit", "spread"]),
    )
    def test_volume_lower_bound_holds(self, replicas, host, policy):
        result = pack(replicas, host, policy=policy)
        if not result.rejected and replicas:
            assert result.n_hosts >= lower_bound_hosts(replicas, host)


class TestPlacement:
    def test_factorized_fleet_needs_fewer_hosts(self):
        """The Pufferfish serving claim at fleet scale: same replica
        count, strictly fewer hosts for the factorized fleet."""
        full = pack([FULL_REPLICA] * 6, HOST)
        fact = pack([FACT_REPLICA] * 6, HOST)
        assert fact.n_hosts < full.n_hosts
        assert fact.fleet_cost < full.fleet_cost
        assert not full.rejected and not fact.rejected

    def test_max_hosts_rejects_explicitly(self):
        result = pack([FULL_REPLICA] * 6, HOST, max_hosts=1)
        assert result.n_hosts == 1
        assert result.n_placed + len(result.rejected) == 6
        assert len(result.rejected) == 4  # 2 fit per 12 MB host

    def test_oversized_replica_rejected_even_unbounded(self):
        big = ReplicaSpec("m", "full", HOST.mem_bytes + 1, 10.0)
        result = pack([big, FACT_REPLICA], HOST)
        assert [r.key for r in result.rejected] == ["m:full"]
        assert result.n_placed == 1

    def test_spread_distributes_same_key(self):
        # Two big replicas force two hosts open; the two same-key small
        # replicas then land on the same host under ffd but on different
        # hosts under spread (fault-domain diversity).
        host = HostSpec(mem_bytes=30, compute_rps=1000.0)
        reps = [ReplicaSpec("big", "full", 20, 1.0)] * 2 + [
            ReplicaSpec("small", "full", 5, 1.0)
        ] * 2
        ffd = pack(reps, host, policy="ffd")
        spread = pack(reps, host, policy="spread")
        assert max(h.count_of("small:full") for h in ffd.hosts) == 2
        assert [h.count_of("small:full") for h in spread.hosts] == [1, 1]

    def test_unknown_policy_raises(self):
        with pytest.raises(ClusterConfigError):
            pack([FACT_REPLICA], HOST, policy="random")

    def test_placement_metrics_flow(self):
        obs.enable_metrics()
        pack([FACT_REPLICA] * 4, HOST)
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["cluster.replicas_placed"] == 4
        assert snap["gauges"]["cluster.hosts{policy=ffd}"] == 1


# -- scenarios --------------------------------------------------------------


class TestScenario:
    def test_parse_phases(self):
        phases = parse_phases("250x60,450x30")
        assert phases == (LoadPhase(60.0, 250.0), LoadPhase(30.0, 450.0))

    @pytest.mark.parametrize(
        "bad", ["", "250", "x60", "250x", "a x b", "250x60,,100x5", "0x60", "250x0"]
    )
    def test_parse_phases_rejects(self, bad):
        with pytest.raises(ClusterConfigError):
            parse_phases(bad)

    def test_rate_at_follows_schedule(self):
        sc = ClusterScenario(parse_phases("100x10,300x10"), window_s=5.0)
        assert sc.rate_at(0.0) == 100.0
        assert sc.rate_at(9.99) == 100.0
        assert sc.rate_at(10.0) == 300.0
        assert sc.duration_s == 20.0
        assert sc.n_windows == 4

    def test_window_arrivals_deterministic_and_bounded(self):
        sc = ClusterScenario(parse_phases("200x20"), window_s=10.0, seed=5)
        a = sc.window_arrivals(1)
        b = sc.window_arrivals(1)
        assert np.array_equal(a, b)
        assert a.min() >= 10.0 and a.max() < 20.0

    def test_windows_query_order_independent(self):
        """Counter-keyed draws: reading window 3 first does not perturb
        window 0 — the cluster analogue of the loadgen guarantee."""
        sc = ClusterScenario(parse_phases("200x40"), window_s=10.0, seed=5)
        late_first = [sc.window_arrivals(3), sc.window_arrivals(0)]
        fresh = ClusterScenario(parse_phases("200x40"), window_s=10.0, seed=5)
        assert np.array_equal(late_first[1], fresh.window_arrivals(0))

    def test_window_out_of_range(self):
        sc = ClusterScenario(parse_phases("200x20"), window_s=10.0)
        with pytest.raises(ClusterConfigError):
            sc.window_arrivals(2)

    def test_route_partitions_arrivals(self):
        arrivals = np.sort(np.random.default_rng(0).uniform(0, 10, 500))
        routed = route_arrivals(arrivals, {"a": 0.3, "b": 0.7}, seed=1, window=0)
        merged = np.sort(np.concatenate([routed["a"], routed["b"]]))
        assert np.array_equal(merged, arrivals)
        # Deterministic split, roughly proportional.
        again = route_arrivals(arrivals, {"a": 0.3, "b": 0.7}, seed=1, window=0)
        assert np.array_equal(routed["a"], again["a"])
        assert 0.15 < len(routed["a"]) / len(arrivals) < 0.45

    def test_route_validates_fractions(self):
        arrivals = np.array([0.1, 0.2])
        with pytest.raises(ClusterConfigError):
            route_arrivals(arrivals, {"a": 0.5, "b": 0.4}, seed=0, window=0)
        with pytest.raises(ClusterConfigError):
            route_arrivals(arrivals, {}, seed=0, window=0)

    def test_scenario_validation(self):
        with pytest.raises(ClusterConfigError):
            ClusterScenario(())
        with pytest.raises(ClusterConfigError):
            ClusterScenario(parse_phases("100x10"), window_s=0.0)
        with pytest.raises(ClusterConfigError):
            ClusterScenario(parse_phases("100x10"), process="uniform")


# -- policies ---------------------------------------------------------------


def stats(window, shed, util, replicas, offered=1000):
    return WindowStats(window, offered, shed, util, replicas)


class TestPolicies:
    def test_validation(self):
        with pytest.raises(ClusterConfigError):
            TargetUtilizationPolicy(target=0.0)
        with pytest.raises(ClusterConfigError):
            TargetUtilizationPolicy(low=0.7, target=0.6, high=0.8)
        with pytest.raises(ClusterConfigError):
            ShedRatePolicy(target=1.5)
        with pytest.raises(ClusterConfigError):
            make_policy("nope")

    def test_target_utilization_scales_up_proportionally(self):
        p = TargetUtilizationPolicy(target=0.6, high=0.8, low=0.3)
        # 1 replica at 95% busy needs ceil(0.95/0.6) = 2 total.
        assert p.decide([stats(0, 0.0, 0.95, 1)]) == 1
        # 4 replicas at 90% need ceil(3.6/0.6)=6 total.
        assert p.decide([stats(0, 0.0, 0.90, 4)]) == 2

    def test_target_utilization_scales_down_after_stable_windows(self):
        p = TargetUtilizationPolicy(target=0.6, high=0.8, low=0.3, stable_windows=2)
        hist = [stats(0, 0.0, 0.2, 2)]
        assert p.decide(hist) == 0  # only one calm window so far
        hist.append(stats(1, 0.0, 0.25, 2))
        assert p.decide(hist) == -1

    def test_target_utilization_dead_band_holds(self):
        p = TargetUtilizationPolicy(target=0.6, high=0.8, low=0.3)
        hist = [stats(w, 0.0, 0.5, 2) for w in range(5)]
        assert p.decide(hist) == 0

    def test_shed_rate_scales_up_on_shed(self):
        p = ShedRatePolicy(target=0.02, step_shed=0.10)
        assert p.decide([stats(0, 0.05, 0.9, 1)]) == 1
        assert p.decide([stats(0, 0.35, 0.99, 2)]) == 3

    def test_shed_rate_scale_down_requires_calm_and_headroom(self):
        p = ShedRatePolicy(target=0.02, stable_windows=2, max_util_after_shrink=0.7)
        calm = [stats(w, 0.0, 0.3, 2) for w in range(2)]
        assert p.decide(calm) == -1
        # Same calm shed but high utilization: shrinking would overload.
        busy = [stats(w, 0.0, 0.6, 2) for w in range(2)]
        assert p.decide(busy) == 0
        # Never shrinks below one replica.
        floor = [stats(w, 0.0, 0.1, 1) for w in range(2)]
        assert p.decide(floor) == 0


# -- autoscaler -------------------------------------------------------------

SPIKE = "250x60,450x60,250x60"


def run_spike(seed=7, **pool_kwargs):
    sc = ClusterScenario(parse_phases(SPIKE), window_s=10.0, seed=seed)
    defaults = dict(initial_replicas=1, max_replicas=8, cooldown_windows=1)
    pool = make_pool(**{**defaults, **pool_kwargs})
    return ClusterAutoscaler(sc, [pool], host_spec=HOST).run()


class TestAutoscaler:
    def test_same_seed_same_digest(self):
        a, b = run_spike(), run_spike()
        assert a.digest() == b.digest()
        assert a.summary() == b.summary()

    def test_different_seed_different_digest(self):
        assert run_spike(seed=7).digest() != run_spike(seed=8).digest()

    def test_scales_up_during_spike(self):
        report = run_spike()
        ups = [e for e in report.events if e.direction == "up"]
        assert ups, "spike above single-replica capacity must trigger scale-up"
        # The spike starts at window 6 (t = 60 s).
        assert all(e.window >= 6 for e in ups)
        assert report.max_replicas_seen("pool") >= 2

    def test_steady_state_shed_within_target(self):
        report = run_spike()
        assert report.steady_state_shed("pool", last_n=3) <= 0.02

    def test_hysteresis_prevents_oscillation(self):
        report = run_spike()
        assert report.oscillations("pool") == 0
        # Stronger: no up event is immediately followed by a down event
        # in the next window anywhere in the timeline.
        evs = report.events
        for a, b in zip(evs, evs[1:]):
            if a.direction != b.direction:
                assert b.window - a.window > 1

    def test_replicas_respect_bounds(self):
        report = run_spike(max_replicas=2)
        assert all(r.replicas <= 2 for r in report.records)
        assert all(r.replicas >= 1 for r in report.records)
        assert all(1 <= e.after <= 2 for e in report.events)

    def test_cooldown_spaces_events(self):
        report = run_spike(cooldown_windows=3)
        evs = report.events
        for a, b in zip(evs, evs[1:]):
            assert b.window - a.window > 3

    def test_final_placement_attached(self):
        report = run_spike()
        assert report.placement is not None
        assert report.placement.n_placed == report.final_replicas["pool"]
        assert report.placement.n_hosts >= 1

    def test_pool_validation(self):
        sc = ClusterScenario(parse_phases("100x10"), window_s=10.0)
        with pytest.raises(ClusterConfigError):
            ClusterAutoscaler(sc, [])
        with pytest.raises(ClusterConfigError):
            ClusterAutoscaler(sc, [make_pool(name="x"), make_pool(name="x")])
        with pytest.raises(ClusterConfigError):
            make_pool(initial_replicas=0)
        with pytest.raises(ClusterConfigError):
            make_pool(min_replicas=4, max_replicas=2)

    def test_two_pools_split_traffic(self):
        sc = ClusterScenario(parse_phases("300x30"), window_s=10.0, seed=2)
        pools = [
            make_pool(name="full", profile=FULL, replica=FULL_REPLICA,
                      traffic_fraction=0.5),
            make_pool(name="fact", traffic_fraction=0.5),
        ]
        report = ClusterAutoscaler(sc, pools).run()
        per_window = {}
        for r in report.records:
            per_window.setdefault(r.window, 0)
            per_window[r.window] += r.offered
        # Together the pools see the whole stream.
        total = sum(len(sc.window_arrivals(w)) for w in range(sc.n_windows))
        assert sum(per_window.values()) == total

    def test_fractions_must_sum_to_one(self):
        sc = ClusterScenario(parse_phases("300x30"), window_s=10.0)
        pools = [
            make_pool(name="a", traffic_fraction=0.5),
            make_pool(name="b", traffic_fraction=0.4),
        ]
        with pytest.raises(ClusterConfigError):
            ClusterAutoscaler(sc, pools)

    def test_cluster_metrics_flow(self):
        obs.enable_metrics()
        report = run_spike()
        snap = obs.get_registry().snapshot()
        assert snap["gauges"]["cluster.pool.replicas{pool=pool}"] == \
            report.records[-1].replicas
        assert "cluster.scale_events{direction=up}" in snap["counters"]


# -- canary -----------------------------------------------------------------


class TestCanary:
    def scenario(self, seed=3):
        return ClusterScenario(parse_phases("400x120"), window_s=10.0, seed=seed)

    def test_equal_profiles_promote(self):
        report = run_canary(self.scenario(), FULL, FACT)
        assert report.status == "promoted"
        assert report.final_fraction == 1.0
        assert [s.advanced for s in report.steps] == [True] * 4

    def test_deterministic(self):
        a = run_canary(self.scenario(), FULL, FACT)
        b = run_canary(self.scenario(), FULL, FACT)
        assert a.digest() == b.digest()

    def test_bad_canary_rolls_back(self):
        # A canary 40x slower than baseline sheds nearly everything.
        slow = LatencyProfile(BATCHES, tuple(40 * t for t in FACT.latency_s))
        report = run_canary(self.scenario(), FULL, slow)
        assert report.status == "rolled_back"
        assert report.final_fraction == 0.0
        assert not report.steps[-1].advanced
        # Rollback stops the schedule early.
        assert len(report.steps) < 4

    def test_needs_enough_windows(self):
        short = ClusterScenario(parse_phases("400x20"), window_s=10.0)
        with pytest.raises(ClusterConfigError):
            run_canary(short, FULL, FACT)

    def test_config_validation(self):
        with pytest.raises(ClusterConfigError):
            CanaryConfig(steps=(0.5, 0.25, 1.0))
        with pytest.raises(ClusterConfigError):
            CanaryConfig(steps=(0.5,))
        with pytest.raises(ClusterConfigError):
            CanaryConfig(windows_per_step=0)
