"""Property-based tests: the step-by-step ring collectives are exact.

For random world sizes, dtypes and (non-divisible) payload shapes, the
simulated ring allreduce/allgather must equal the numpy reference —
with and without injected faults (seeded, so any failure reproduces).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    CollectiveTimeoutError,
    DropSpec,
    FaultInjector,
    FaultSpec,
    allreduce_mean,
    ring_allgather,
    ring_allreduce_mean,
)

WORLD = st.integers(1, 8)
# Sizes straddling the chunking boundary: empty chunks (size < p),
# non-divisible sizes, and exact multiples all occur.
SIZE = st.integers(0, 41)
DTYPE = st.sampled_from([np.float32, np.float64])
SEED = st.integers(0, 2**31 - 1)


def vectors(p, size, dtype, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(size).astype(dtype) * 100 for _ in range(p)]


def reference_mean(vs):
    # Rank-order sequential sum in float64 — the canonical reduction
    # order every worker must reproduce bit-for-bit.  (np.sum would use
    # pairwise accumulation, which reassociates for p >= 8.)
    acc = vs[0].astype(np.float64)
    for v in vs[1:]:
        acc = acc + v.astype(np.float64)
    return (acc / len(vs)).astype(vs[0].dtype)


class TestRingAllreduceExactness:
    @given(p=WORLD, size=SIZE, dtype=DTYPE, seed=SEED)
    @settings(max_examples=80, deadline=None)
    def test_matches_numpy_reference(self, p, size, dtype, seed):
        vs = vectors(p, size, dtype, seed)
        for out in ring_allreduce_mean(vs):
            assert out.dtype == dtype
            assert np.array_equal(out, reference_mean(vs))

    @given(p=WORLD, size=SIZE, dtype=DTYPE, seed=SEED)
    @settings(max_examples=40, deadline=None)
    def test_matches_semantic_allreduce(self, p, size, dtype, seed):
        vs = vectors(p, size, dtype, seed)
        semantic = allreduce_mean(vs)
        for out in ring_allreduce_mean(vs):
            assert np.array_equal(out, semantic)

    @given(p=WORLD, rows=st.integers(1, 5), cols=st.integers(1, 5),
           dtype=DTYPE, seed=SEED)
    @settings(max_examples=40, deadline=None)
    def test_preserves_multidim_shape(self, p, rows, cols, dtype, seed):
        rng = np.random.default_rng(seed)
        vs = [rng.standard_normal((rows, cols)).astype(dtype) for _ in range(p)]
        for out in ring_allreduce_mean(vs):
            assert out.shape == (rows, cols)
            assert np.array_equal(out, reference_mean(vs))

    @given(p=WORLD, size=SIZE, seed=SEED, fault_seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_faults_never_corrupt_numerics(self, p, size, seed, fault_seed):
        """Dropped-and-retried messages delay the ring but the result is
        bit-identical to the fault-free run (or a typed timeout)."""
        vs = vectors(p, size, np.float32, seed)
        clean = ring_allreduce_mean(vs)
        inj = FaultInjector(
            FaultSpec(seed=fault_seed, drop=DropSpec(prob=0.3, max_retries=100))
        )
        faulty = ring_allreduce_mean(vs, faults=inj, iteration=0)
        for a, b in zip(clean, faulty):
            assert np.array_equal(a, b)
        assert inj.drain_penalty() >= 0.0

    @given(p=WORLD, size=SIZE, seed=SEED, fault_seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_fault_penalty_reproduces_with_seed(self, p, size, seed, fault_seed):
        vs = vectors(p, size, np.float32, seed)

        def run():
            inj = FaultInjector(
                FaultSpec(seed=fault_seed, drop=DropSpec(prob=0.4, max_retries=200))
            )
            ring_allreduce_mean(vs, faults=inj, iteration=3)
            return inj.drain_penalty(), [e.as_dict() for e in inj.events]

        assert run() == run()

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_mean(
                [np.zeros(3, dtype=np.float32), np.zeros(4, dtype=np.float32)]
            )

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_mean([])


class TestRingAllgatherExactness:
    @given(p=WORLD, size=st.integers(0, 9), seed=SEED)
    @settings(max_examples=40, deadline=None)
    def test_every_worker_gets_all_payloads_in_rank_order(self, p, size, seed):
        rng = np.random.default_rng(seed)
        payloads = [rng.standard_normal(size).astype(np.float32) for _ in range(p)]
        views = ring_allgather(payloads)
        assert len(views) == p
        for view in views:
            assert len(view) == p
            for got, want in zip(view, payloads):
                assert got is want  # zero-copy identity, rank order preserved

    @given(p=WORLD, fault_seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_allgather_with_faults_still_exact(self, p, fault_seed):
        payloads = list(range(p))
        inj = FaultInjector(
            FaultSpec(seed=fault_seed, drop=DropSpec(prob=0.3, max_retries=100))
        )
        views = ring_allgather(payloads, faults=inj, iteration=0)
        assert views == [payloads] * p

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            ring_allgather([])


class TestTimeoutUnderExtremeDrops:
    @given(p=st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_certain_drop_raises_not_hangs(self, p):
        vs = [np.ones(8, dtype=np.float32)] * p
        inj = FaultInjector(FaultSpec(seed=0, drop=DropSpec(prob=1.0, max_retries=3)))
        with pytest.raises(CollectiveTimeoutError):
            ring_allreduce_mean(vs, faults=inj, iteration=0)
