"""Eval paths must not build autograd graphs.

The serving subsystem's latency profiles come from measured eval-mode
forwards, so any code path that silently records the graph during
evaluation both wastes memory and skews the measured service times.
``repro.tensor.graph_nodes_created`` counts every recorded node; these
tests pin the contract: zero delta across evaluation, nonzero during
training forwards.
"""

import numpy as np

from repro import nn
from repro.core import Trainer
from repro.data import DataLoader
from repro.optim import SGD
from repro.serve import measure_latency_profile
from repro.tensor import Tensor, graph_nodes_created, no_grad


def make_model(dim=12, num_classes=3):
    return nn.Sequential(
        nn.Linear(dim, 16), nn.ReLU(), nn.Linear(16, num_classes)
    )


def make_loader(rng, n=64, dim=12, num_classes=3):
    x = rng.standard_normal((n, dim)).astype(np.float32)
    y = rng.integers(0, num_classes, n)
    return DataLoader(x, y, 16)


class TestGraphNodeCounter:
    def test_training_forward_creates_nodes(self, rng):
        model = make_model()
        model.train()
        x = Tensor(rng.standard_normal((8, 12)).astype(np.float32))
        before = graph_nodes_created()
        loss = model(x).sum()
        assert graph_nodes_created() > before
        loss.backward()

    def test_no_grad_forward_creates_no_nodes(self, rng):
        model = make_model()
        model.eval()
        x = Tensor(rng.standard_normal((8, 12)).astype(np.float32))
        with no_grad():
            before = graph_nodes_created()
            model(x)
            assert graph_nodes_created() == before

    def test_trainer_evaluate_creates_no_nodes(self, rng):
        """The audit the serving PR rides on: Trainer.evaluate runs under
        ``no_grad`` + ``Module.eval()`` and records exactly zero graph
        nodes — the whole evaluation, not just the forward call."""
        model = make_model()
        loader = make_loader(rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        trainer.evaluate(loader)  # warm any lazy setup first
        before = graph_nodes_created()
        trainer.evaluate(loader)
        assert graph_nodes_created() == before

    def test_evaluate_restores_training_graph_recording(self, rng):
        model = make_model()
        loader = make_loader(rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        trainer.evaluate(loader)
        x = Tensor(rng.standard_normal((4, 12)).astype(np.float32))
        model.train()
        before = graph_nodes_created()
        model(x).sum().backward()
        assert graph_nodes_created() > before

    def test_latency_measurement_creates_no_nodes(self, rng):
        from repro.models import MLP

        model = MLP(3 * 32 * 32, [16], 4)  # flattens image inputs itself
        before = graph_nodes_created()
        profile = measure_latency_profile(
            model, (3, 32, 32), batch_sizes=(1, 2), repeats=1, warmup=0
        )
        assert graph_nodes_created() == before
        assert len(profile.batch_sizes) == 2
