"""Multi-head attention and Transformer block tests."""

import numpy as np
import pytest

from repro import nn
from repro.models.transformer import causal_mask, padding_mask
from repro.tensor import Tensor


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        mha = nn.MultiHeadAttention(16, 4, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 5, 16)))
        assert mha(x, x, x).shape == (2, 5, 16)

    def test_d_model_divisibility_enforced(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_param_count(self):
        d = 16
        mha = nn.MultiHeadAttention(d, 4)
        # 4 square projections + biases
        assert mha.num_parameters() == 4 * (d * d + d)

    def test_causal_mask_blocks_future(self, rng):
        # With a causal mask, output at position t must not change when
        # future inputs change.
        mha = nn.MultiHeadAttention(8, 2, dropout=0.0)
        mha.eval()
        x1 = rng.standard_normal((1, 4, 8)).astype(np.float32)
        x2 = x1.copy()
        x2[0, 3] += 10.0  # perturb the last position
        mask = causal_mask(4)
        out1 = mha(Tensor(x1), Tensor(x1), Tensor(x1), mask).data
        out2 = mha(Tensor(x2), Tensor(x2), Tensor(x2), mask).data
        assert np.allclose(out1[0, :3], out2[0, :3], atol=1e-4)
        assert not np.allclose(out1[0, 3], out2[0, 3], atol=1e-3)

    def test_padding_mask_blocks_keys(self, rng):
        mha = nn.MultiHeadAttention(8, 2, dropout=0.0)
        mha.eval()
        tokens = np.array([[5, 6, 0, 0]])  # pad = 0
        mask = padding_mask(tokens, 0)
        x1 = rng.standard_normal((1, 4, 8)).astype(np.float32)
        x2 = x1.copy()
        x2[0, 2:] += 100.0  # change only padded positions
        out1 = mha(Tensor(x1), Tensor(x1), Tensor(x1), mask).data
        out2 = mha(Tensor(x1), Tensor(x2), Tensor(x2), mask).data
        assert np.allclose(out1, out2, atol=1e-3)

    def test_gradients_flow(self, rng):
        mha = nn.MultiHeadAttention(8, 2, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 3, 8)))
        mha(x, x, x).sum().backward()
        assert all(p.grad is not None for p in mha.parameters())


class TestPositionalEncoding:
    def test_deterministic_and_bounded(self, rng):
        pe = nn.PositionalEncoding(16, max_len=50, dropout=0.0)
        assert np.all(np.abs(pe.pe) <= 1.0)

    def test_added_to_input(self, rng):
        pe = nn.PositionalEncoding(16, max_len=50, dropout=0.0)
        pe.eval()
        x = Tensor(np.zeros((1, 10, 16), dtype=np.float32))
        out = pe(x)
        assert np.allclose(out.data[0], pe.pe[:10], atol=1e-6)

    def test_no_trainable_weights(self):
        pe = nn.PositionalEncoding(16)
        assert pe.num_parameters() == 0


class TestEncoderDecoderLayers:
    def test_encoder_shape_preserved(self, rng):
        enc = nn.TransformerEncoderLayer(16, 4, 32, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 6, 16)))
        assert enc(x).shape == (2, 6, 16)

    def test_decoder_shape_preserved(self, rng):
        dec = nn.TransformerDecoderLayer(16, 4, 32, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 5, 16)))
        mem = Tensor(rng.standard_normal((2, 7, 16)))
        assert dec(x, mem, causal_mask(5)).shape == (2, 5, 16)

    def test_encoder_backward_full_coverage(self, rng):
        enc = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 4, 8)))
        enc(x).sum().backward()
        assert all(p.grad is not None for p in enc.parameters())

    def test_decoder_backward_full_coverage(self, rng):
        dec = nn.TransformerDecoderLayer(8, 2, 16, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 3, 8)))
        mem = Tensor(rng.standard_normal((1, 4, 8)))
        dec(x, mem).sum().backward()
        assert all(p.grad is not None for p in dec.parameters())

    def test_ffn_expansion(self, rng):
        ffn = nn.PositionwiseFFN(8, 32, dropout=0.0)
        assert ffn.layer1.out_features == 32
        x = Tensor(rng.standard_normal((2, 3, 8)))
        assert ffn(x).shape == (2, 3, 8)


class TestMasks:
    def test_causal_mask_structure(self):
        m = causal_mask(4)
        assert m.shape == (4, 4)
        assert np.all(m[np.triu_indices(4, k=1)] < -1e8)
        assert np.all(m[np.tril_indices(4)] == 0)

    def test_padding_mask_structure(self):
        tokens = np.array([[3, 4, 0], [5, 0, 0]])
        m = padding_mask(tokens, 0)
        assert m.shape == (2, 1, 1, 3)
        assert m[0, 0, 0, 2] < -1e8 and m[0, 0, 0, 0] == 0
