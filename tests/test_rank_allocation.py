"""Property-based tests for the per-layer rank allocators.

The lifecycle scheduler re-chooses ranks online from the same
``energy_rank`` curves these allocators use, so their contract has to
hold on arbitrary weights, not just the trained checkpoints the
benchmarks pin:

* ``budget_rank_allocation`` never spends more than ``max(budget, floor)``
  where the floor is every layer at ``min_rank``;
* ``energy_rank_allocation`` is monotone in the energy target — asking to
  retain more energy can only raise a layer's rank — and respects the
  ``min_rank`` / ``max_ratio`` clip on every layer;
* a matrix of exact rank ``k`` (with a threshold below 1) is allocated
  exactly rank ``k``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.rank_allocation import (
    budget_rank_allocation,
    energy_rank_allocation,
)
from repro.models import MLP
from repro.nn.linear import Linear
from repro.nn.module import Module


def _mlp(seed: int, dims=(12, 10, 8)) -> MLP:
    """A small MLP with seeded weights (every Linear is factorizable)."""
    np.random.seed(seed)
    return MLP(dims[0], list(dims[1:]), 4)


def _lowrank_params(shape, r):
    m, n = shape
    return r * (m + n)


def _spent(model, ranks):
    total = 0
    for path, layer in model.named_modules():
        if isinstance(layer, Linear) and path in ranks:
            total += _lowrank_params(layer.weight.data.shape, ranks[path])
    return total


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), budget=st.integers(0, 2000))
def test_budget_never_exceeded(seed, budget):
    model = _mlp(seed)
    ranks = budget_rank_allocation(model, budget)
    floor = _spent(model, {p: 1 for p in ranks})
    assert _spent(model, ranks) <= max(budget, floor)
    assert all(r >= 1 for r in ranks.values())


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    lo=st.floats(0.05, 0.95),
    delta=st.floats(0.0, 0.9),
)
def test_energy_allocation_monotone_in_threshold(seed, lo, delta):
    model = _mlp(seed)
    hi = min(lo + delta, 0.999)
    at_lo = energy_rank_allocation(model, energy_threshold=lo)
    at_hi = energy_rank_allocation(model, energy_threshold=hi)
    assert sorted(at_lo) == sorted(at_hi)
    for path in at_lo:
        assert at_lo[path] <= at_hi[path]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    min_rank=st.integers(1, 4),
    max_ratio=st.floats(0.1, 1.0),
)
def test_energy_allocation_respects_clip(seed, min_rank, max_ratio):
    model = _mlp(seed)
    ranks = energy_rank_allocation(
        model, energy_threshold=0.9, min_rank=min_rank, max_ratio=max_ratio
    )
    for path, layer in model.named_modules():
        if not isinstance(layer, Linear) or path not in ranks:
            continue
        full = min(layer.weight.data.shape)
        cap = max(min_rank, int(max_ratio * full))
        assert min_rank <= ranks[path] <= cap


class _OneLinear(Module):
    def __init__(self, weight: np.ndarray):
        super().__init__()
        self.fc = Linear(weight.shape[1], weight.shape[0])
        self.fc.weight.data = weight.astype(np.float32)

    def forward(self, x):
        return self.fc(x)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    k=st.integers(1, 6),
    m=st.integers(8, 16),
    n=st.integers(8, 16),
)
def test_exact_rank_k_matrix_allocates_k(seed, k, m, n):
    """A matrix with exactly k equal singular values needs exactly rank k
    to retain any sub-unit energy fraction."""
    rng = np.random.default_rng(seed)
    k = min(k, m, n)
    # Orthonormal factors give exactly k unit singular values.
    u, _ = np.linalg.qr(rng.standard_normal((m, k)))
    v, _ = np.linalg.qr(rng.standard_normal((n, k)))
    model = _OneLinear(u @ v.T)
    ranks = energy_rank_allocation(model, energy_threshold=0.999)
    assert ranks == {"fc": k}
