"""Property-based tests (hypothesis) over the core data structures and
numerical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import NoCompression, Signum, TopK
from repro.core import approximation_error, default_rank, factorize_matrix
from repro.distributed import flatten_arrays, unflatten_vector
from repro.metrics import corpus_bleu, perplexity, topk_accuracy
from repro.tensor import Tensor, softmax
from repro.tensor.tensor import _unbroadcast

SMALL_FLOATS = st.floats(-100, 100, allow_nan=False, width=32)


def float_matrix(max_dim=8):
    return hnp.arrays(
        np.float32,
        st.tuples(st.integers(1, max_dim), st.integers(1, max_dim)),
        elements=SMALL_FLOATS,
    )


class TestUnbroadcast:
    @given(float_matrix())
    @settings(max_examples=40, deadline=None)
    def test_identity_when_shapes_match(self, m):
        assert np.array_equal(_unbroadcast(m, m.shape), m)

    @given(float_matrix())
    @settings(max_examples=40, deadline=None)
    def test_sums_prepended_axes(self, m):
        g = np.broadcast_to(m, (3,) + m.shape)
        out = _unbroadcast(np.array(g), m.shape)
        assert np.allclose(out, 3 * m, rtol=1e-4, atol=1e-3)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_sums_stretched_axes(self, rows, cols):
        g = np.ones((rows, cols), dtype=np.float32)
        out = _unbroadcast(g, (rows, 1))
        assert out.shape == (rows, 1)
        assert np.allclose(out, cols)


class TestAutogradLinearity:
    @given(float_matrix(5), st.floats(-5, 5, allow_nan=False, width=32))
    @settings(max_examples=30, deadline=None)
    def test_grad_scales_linearly(self, m, scale):
        # d(sum(c*x))/dx == c everywhere, for any c.
        t = Tensor(m, requires_grad=True)
        (t * float(scale)).sum().backward()
        assert np.allclose(t.grad, scale, rtol=1e-4, atol=1e-4)

    @given(float_matrix(5))
    @settings(max_examples=30, deadline=None)
    def test_sum_of_parts_equals_whole(self, m):
        t1 = Tensor(m, requires_grad=True)
        (t1.sum() + t1.sum()).backward()
        assert np.allclose(t1.grad, 2.0)


class TestSoftmaxProperties:
    @given(float_matrix(6))
    @settings(max_examples=40, deadline=None)
    def test_simplex_output(self, m):
        s = softmax(Tensor(m)).data
        assert np.all(s >= 0)
        assert np.allclose(s.sum(axis=-1), 1.0, atol=1e-4)

    @given(float_matrix(6), st.floats(-50, 50, allow_nan=False, width=32))
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance(self, m, c):
        a = softmax(Tensor(m)).data
        b = softmax(Tensor(m + np.float32(c))).data
        assert np.allclose(a, b, atol=1e-4)


class TestFactorizationProperties:
    @given(float_matrix(10), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_shapes_and_rank_clamp(self, m, r):
        u, vt = factorize_matrix(m, r)
        eff = min(r, min(m.shape))
        assert u.shape == (m.shape[0], eff)
        assert vt.shape == (eff, m.shape[1])

    @given(float_matrix(8))
    @settings(max_examples=40, deadline=None)
    def test_full_rank_exact(self, m):
        r = min(m.shape)
        u, vt = factorize_matrix(m, r)
        assert np.allclose(u @ vt, m, atol=1e-2 + 1e-4 * np.abs(m).max())

    @given(float_matrix(8))
    @settings(max_examples=40, deadline=None)
    def test_error_monotone_in_rank(self, m):
        errs = [
            approximation_error(m, *factorize_matrix(m, r))
            for r in range(1, min(m.shape) + 1)
        ]
        for a, b in zip(errs, errs[1:]):
            assert b <= a + 1e-5

    @given(st.integers(1, 4096), st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_default_rank_bounds(self, full, ratio):
        r = default_rank(full, ratio)
        assert 1 <= r <= max(1, full)


class TestFlattenRoundtrip:
    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, shapes):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(s).astype(np.float32) for s in shapes]
        flat = flatten_arrays(arrays)
        back = unflatten_vector(flat, [a.shape for a in arrays])
        for a, b in zip(arrays, back):
            assert np.array_equal(a, b)


class TestCompressorProperties:
    @given(
        hnp.arrays(np.float32, st.tuples(st.integers(2, 8), st.integers(2, 8)),
                   elements=SMALL_FLOATS),
        st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_nocompression_identity_for_equal_workers(self, g, n_workers):
        comp = NoCompression(n_workers)
        res = [comp.encode(w, [g]) for w in range(n_workers)]
        agg = comp.decode_aggregate(res)
        assert np.allclose(agg[0], g, atol=1e-4)

    @given(hnp.arrays(np.float32, st.integers(8, 64),
                      elements=st.floats(-10, 10, allow_nan=False, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_signum_outputs_signs(self, g):
        comp = Signum(1, momentum=0.0)
        agg = comp.decode_aggregate([comp.encode(0, [g])])
        assert set(np.unique(agg[0])).issubset({-1.0, 0.0, 1.0})

    @given(
        hnp.arrays(np.float32, st.integers(10, 100),
                   elements=st.floats(-10, 10, allow_nan=False, width=32)),
        st.floats(0.05, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_topk_sparsity_bound(self, g, ratio):
        comp = TopK(1, ratio=float(ratio), error_feedback=False)
        agg = comp.decode_aggregate([comp.encode(0, [g])])
        k = max(1, int(ratio * g.size))
        assert (agg[0] != 0).sum() <= k


class TestMetricProperties:
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 20), st.integers(2, 10)),
                   elements=st.floats(-10, 10, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_accuracy_monotone_in_k(self, logits):
        rng = np.random.default_rng(0)
        t = rng.integers(0, logits.shape[1], logits.shape[0])
        accs = [topk_accuracy(logits, t, k) for k in range(1, logits.shape[1] + 1)]
        assert accs == sorted(accs)
        assert accs[-1] == 1.0

    @given(st.floats(0, 15, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_perplexity_monotone(self, nll):
        assert perplexity(nll) <= perplexity(nll + 0.1)

    @given(
        st.lists(st.lists(st.integers(3, 10), min_size=1, max_size=8),
                 min_size=1, max_size=5)
    )
    @settings(max_examples=40, deadline=None)
    def test_bleu_bounds_and_self_score(self, seqs):
        score = corpus_bleu(seqs, seqs)
        assert 0.0 <= score <= 100.0 + 1e-6
        # Self-BLEU is 100 whenever 4-grams exist in every sentence.
        if all(len(s) >= 4 for s in seqs):
            assert score == pytest.approx(100.0, abs=0.1)


class TestModuleInvariants:
    @given(st.integers(1, 16), st.integers(1, 16), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_lowrank_param_arithmetic(self, m, n, r):
        from repro.core import LowRankLinear

        r = min(r, m, n)
        layer = LowRankLinear(n, m, rank=r, bias=False)
        assert layer.num_parameters() == r * (m + n)

    @given(st.integers(2, 12), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_state_dict_roundtrip_linear(self, dim, out):
        from repro import nn

        a, b = nn.Linear(dim, out), nn.Linear(dim, out)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).standard_normal((3, dim)))
        assert np.allclose(a(x).data, b(x).data)
