"""Distributed simulator: cost models, collectives, flat buffers, and
exact equivalence between simulated data-parallel SGD and centralized SGD."""

import numpy as np
import pytest

from repro import nn
from repro.compression import Signum
from repro.data import DataLoader, shard_dataset
from repro.distributed import (
    ClusterSpec,
    DDPTimelineModel,
    DistributedTrainer,
    allgather_time,
    allreduce_mean,
    assign_gradient_vector,
    broadcast_time,
    flatten_arrays,
    gradient_vector,
    ring_allreduce_time,
    unflatten_vector,
)
from repro.models import MLP
from repro.optim import SGD
from repro.tensor import Tensor


class TestCostModel:
    def test_single_node_free(self):
        c = ClusterSpec(1)
        assert ring_allreduce_time(1e9, c) == 0.0
        assert allgather_time(1e9, c) == 0.0

    def test_ring_allreduce_bandwidth_term_saturates(self):
        # 2(p-1)/p approaches 2: doubling nodes barely changes bandwidth cost.
        m = 100e6
        t8 = ring_allreduce_time(m, ClusterSpec(8, latency_s=0))
        t64 = ring_allreduce_time(m, ClusterSpec(64, latency_s=0))
        assert t64 / t8 < 1.15

    def test_allgather_scales_linearly_with_nodes(self):
        m = 1e6
        t4 = allgather_time(m, ClusterSpec(4, latency_s=0))
        t16 = allgather_time(m, ClusterSpec(16, latency_s=0))
        assert t16 / t4 == pytest.approx(5.0, rel=1e-6)  # (16-1)/(4-1)

    def test_latency_term_grows_with_nodes(self):
        t2 = ring_allreduce_time(0, ClusterSpec(2))
        t16 = ring_allreduce_time(0, ClusterSpec(16))
        assert t16 > t2 > 0

    def test_compressed_allgather_can_lose_to_allreduce(self):
        # The Appendix-F effect: a 32x-compressed allgather still loses to a
        # full-size ring allreduce at large node counts.
        # Crossover: (p-1)/32 vs 2(p-1)/p per byte — equal at p = 64, so the
        # compressed allgather strictly loses beyond 64 nodes.
        c = ClusterSpec(128, latency_s=0)
        m = 100e6
        assert allgather_time(m / 32, c) > ring_allreduce_time(m, c)

    def test_broadcast_log_rounds(self):
        assert broadcast_time(0, ClusterSpec(8)) == pytest.approx(3 * 50e-6)

    def test_invalid_cluster_raises(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(2, bandwidth_gbps=-1)


class TestCollectives:
    def test_allreduce_mean(self):
        vs = [np.ones(4, dtype=np.float32) * i for i in range(4)]
        assert np.allclose(allreduce_mean(vs), 1.5)

    def test_allreduce_empty_raises(self):
        with pytest.raises(ValueError):
            allreduce_mean([])

    def test_flatten_unflatten_roundtrip(self, rng):
        arrays = [rng.standard_normal(s).astype(np.float32) for s in [(3, 4), (5,), (2, 2, 2)]]
        flat = flatten_arrays(arrays)
        assert flat.shape == (12 + 5 + 8,)
        back = unflatten_vector(flat, [a.shape for a in arrays])
        for a, b in zip(arrays, back):
            assert np.allclose(a, b)

    def test_unflatten_size_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            unflatten_vector(np.zeros(10, dtype=np.float32), [(3, 4)])

    def test_gradient_vector_roundtrip(self, rng):
        model = MLP(6, [8], 3)
        x = Tensor(rng.standard_normal((4, 6)))
        model(x).sum().backward()
        vec = gradient_vector(list(model.parameters()))
        model.zero_grad()
        assign_gradient_vector(list(model.parameters()), vec)
        vec2 = gradient_vector(list(model.parameters()))
        assert np.allclose(vec, vec2)

    def test_gradient_vector_handles_none_grads(self):
        model = MLP(4, [4], 2)
        vec = gradient_vector(list(model.parameters()))
        assert np.allclose(vec, 0)


class TestDistributedEquivalence:
    def test_matches_centralized_sgd_exactly(self, rng):
        """K-shard simulated data-parallel SGD == single-node SGD on the
        combined batch (no BN, so the equivalence is exact)."""

        x = rng.standard_normal((32, 6)).astype(np.float32)
        y = rng.integers(0, 3, 32)

        def fresh_model():
            from repro.utils import set_seed

            set_seed(42)
            return MLP(6, [16], 3)

        # Centralized: full batch of 32.
        central = fresh_model()
        opt_c = SGD(central.parameters(), lr=0.1)
        loss_fn = nn.CrossEntropyLoss()
        logits = central(Tensor(x))
        loss_fn(logits, y).backward()
        opt_c.step()

        # Distributed: 4 workers × 8 examples. Mean-of-shard-means equals
        # the full-batch mean because shards are equal-sized.
        dist = fresh_model()
        opt_d = SGD(dist.parameters(), lr=0.1)
        trainer = DistributedTrainer(dist, opt_d, ClusterSpec(4))
        shards = shard_dataset(x, y, 4)
        loaders = [DataLoader(sx, sy, 8) for sx, sy in shards]
        trainer.train_epoch(loaders)

        for (n1, p1), (n2, p2) in zip(central.named_parameters(), dist.named_parameters()):
            assert np.allclose(p1.data, p2.data, atol=1e-5), n1

    def test_timeline_phases_populated(self, rng):
        model = MLP(6, [8], 3)
        trainer = DistributedTrainer(model, SGD(model.parameters(), lr=0.1), ClusterSpec(2))
        x = rng.standard_normal((16, 6)).astype(np.float32)
        y = rng.integers(0, 3, 16)
        loaders = [DataLoader(sx, sy, 8) for sx, sy in shard_dataset(x, y, 2)]
        tl = trainer.train_epoch(loaders)
        assert tl.compute > 0 and tl.comm > 0
        assert tl.iterations == 1
        assert tl.total == pytest.approx(
            tl.compute + tl.encode + tl.comm + tl.decode + tl.other
        )

    def test_loader_count_mismatch_raises(self, rng):
        model = MLP(4, [4], 2)
        trainer = DistributedTrainer(model, SGD(model.parameters(), lr=0.1), ClusterSpec(4))
        with pytest.raises(ValueError):
            trainer.train_epoch([])

    def test_signum_charged_allgather(self, rng):
        # Signum's modeled comm must grow with node count; SGD's ring
        # allreduce stays ~flat (bandwidth term saturates).
        def run(n_nodes, compressor_cls):
            model = MLP(6, [32], 3)
            comp = compressor_cls(n_nodes)
            trainer = DistributedTrainer(
                model, SGD(model.parameters(), lr=0.1), ClusterSpec(n_nodes, latency_s=0),
                compressor=comp,
            )
            x = rng.standard_normal((n_nodes * 4, 6)).astype(np.float32)
            y = rng.integers(0, 3, n_nodes * 4)
            loaders = [DataLoader(sx, sy, 4) for sx, sy in shard_dataset(x, y, n_nodes)]
            return trainer.train_epoch(loaders).comm

        sig4, sig16 = run(4, Signum), run(16, Signum)
        assert sig16 / sig4 == pytest.approx(5.0, rel=0.01)

    def test_flat_vs_per_layer_latency(self, rng):
        # Section 4.1: one flat allreduce must beat per-layer allreduces on
        # the latency term.
        x = rng.standard_normal((8, 6)).astype(np.float32)
        y = rng.integers(0, 3, 8)

        def run(flat):
            m = MLP(6, [8, 8, 8], 3)
            t = DistributedTrainer(
                m, SGD(m.parameters(), lr=0.1), ClusterSpec(8), flat_allreduce=flat
            )
            loaders = [DataLoader(sx, sy, 1) for sx, sy in shard_dataset(x, y, 8)]
            return t.train_epoch(loaders).comm

        assert run(flat=True) < run(flat=False)

    def test_pufferfish_model_communicates_less(self, rng):
        # The paper's core claim at the systems level: the factorized model's
        # allreduce payload shrinks proportionally to its parameter count.
        from repro.core import FactorizationConfig, build_hybrid

        model = MLP(32, [64, 64], 4)
        hybrid, report = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))

        def payload(m):
            t = DistributedTrainer(m, SGD(m.parameters(), lr=0.1), ClusterSpec(2))
            x = rng.standard_normal((8, 32)).astype(np.float32)
            y = rng.integers(0, 4, 8)
            loaders = [DataLoader(sx, sy, 4) for sx, sy in shard_dataset(x, y, 2)]
            tl = t.train_epoch(loaders)
            return tl.bytes_per_iteration

        assert payload(hybrid) / payload(model) == pytest.approx(
            report.params_after / report.params_before, rel=1e-6
        )


class TestDDPTimelineModel:
    def test_full_overlap_hides_comm(self):
        ddp = DDPTimelineModel(ClusterSpec(4))
        out = ddp.iteration_time(model_bytes=1e6, compute_seconds=10.0)
        assert out["comm_exposed"] == 0.0
        assert out["iteration"] == 10.0

    def test_comm_bound_regime_exposes_comm(self):
        ddp = DDPTimelineModel(ClusterSpec(16, bandwidth_gbps=1.0))
        out = ddp.iteration_time(model_bytes=500e6, compute_seconds=0.01)
        assert out["comm_exposed"] > 0

    def test_bucket_count(self):
        ddp = DDPTimelineModel(ClusterSpec(4), bucket_mb=25)
        assert ddp.iteration_time(100e6, 1.0)["n_buckets"] == 4

    def test_epoch_time_scales_with_iterations(self):
        ddp = DDPTimelineModel(ClusterSpec(4))
        t1 = ddp.epoch_time(1e6, 0.5, 10)
        t2 = ddp.epoch_time(1e6, 0.5, 20)
        assert t2 == pytest.approx(2 * t1)

    def test_larger_cluster_more_comm(self):
        m = 200e6
        t2 = DDPTimelineModel(ClusterSpec(2)).iteration_time(m, 0.01)["comm_raw"]
        t16 = DDPTimelineModel(ClusterSpec(16)).iteration_time(m, 0.01)["comm_raw"]
        assert t16 > t2
