"""End-to-end integration tests: models learn the synthetic tasks, and the
paper's qualitative orderings hold at miniature scale.

These are the smallest-possible versions of the benchmark experiments —
they assert direction, not magnitude, and stay fast enough for CI.
"""

import numpy as np

from repro import nn
from repro.core import (
    FactorizationConfig,
    PufferfishTrainer,
    Trainer,
    build_hybrid,
)
from repro.data import DataLoader, make_cifar_like, make_lm_corpus, batchify, get_lm_batch
from repro.metrics import perplexity
from repro.models import LSTMLanguageModel, lstm_lm_hybrid_config
from repro.optim import SGD, Adam, clip_grad_norm
from repro.tensor import Tensor
from repro.utils import set_seed


def image_task(rng, n=256, classes=4, noise=0.15):
    ds = make_cifar_like(n=n, num_classes=classes, noise=noise, rng=rng)
    tr, va = ds.split(int(0.8 * n))
    return (
        DataLoader(tr.images, tr.labels, 32, shuffle=True),
        DataLoader(va.images, va.labels, 64),
    )


def small_cnn(classes=4):
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1), nn.BatchNorm2d(16), nn.ReLU(), nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1), nn.BatchNorm2d(32), nn.ReLU(), nn.MaxPool2d(2),
        nn.Conv2d(32, 32, 3, padding=1), nn.ReLU(), nn.GlobalAvgPool2d(),
        nn.Linear(32, classes),
    )


class TestImageClassificationLearns:
    def test_cnn_beats_chance(self, rng):
        train, val = image_task(rng)
        model = small_cnn()
        t = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9))
        t.fit(train, val, epochs=6)
        assert t.history[-1].val_metric > 0.5  # chance = 0.25

    def test_pufferfish_full_pipeline_learns(self, rng):
        from repro.optim import MultiStepLR

        train, val = image_task(rng)
        model = small_cnn()
        pt = PufferfishTrainer(
            model,
            FactorizationConfig(rank_ratio=0.25),
            optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            scheduler_factory=lambda opt: MultiStepLR(opt, [6], gamma=0.1),
            warmup_epochs=2,
            total_epochs=10,
        )
        hybrid = pt.fit(train, val)
        best = max(s.val_metric for s in pt.history)
        assert best > 0.5
        assert hybrid.num_parameters() < model.num_parameters()

    def test_accuracy_survives_conversion(self, rng):
        # Switching to low rank must not destroy the warm-up progress:
        # first low-rank epoch accuracy >= 0.6 * last warm-up accuracy.
        train, val = image_task(rng)
        model = small_cnn()
        pt = PufferfishTrainer(
            model,
            FactorizationConfig(rank_ratio=0.25),
            optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            warmup_epochs=4,
            total_epochs=6,
        )
        pt.fit(train, val)
        warm = [s for s in pt.history if s.phase == "warmup"][-1]
        low = [s for s in pt.history if s.phase == "lowrank"][0]
        assert low.val_metric >= 0.6 * warm.val_metric


class TestPaperOrderings:
    def test_warmup_beats_scratch_lowrank(self, rng):
        """Table 8's core ablation at miniature scale: hybrid + warm-up
        reaches at least the accuracy of low-rank-from-scratch (averaged
        over seeds to control noise)."""

        from repro.optim import MultiStepLR

        def run(warmup_epochs, seed):
            set_seed(seed)
            r = np.random.default_rng(seed)
            train, val = image_task(r, n=320, noise=0.25)
            model = small_cnn()
            pt = PufferfishTrainer(
                model,
                FactorizationConfig(rank_ratio=0.2),
                optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9),
                scheduler_factory=lambda opt: MultiStepLR(opt, [5], gamma=0.1),
                warmup_epochs=warmup_epochs,
                total_epochs=8,
            )
            pt.fit(train, val)
            return max(s.val_metric for s in pt.history if s.phase == "lowrank")

        # 3-seed mean, tolerance one part in twenty.
        seeds = [0, 1, 2]
        with_warm = np.mean([run(3, s) for s in seeds])
        scratch = np.mean([run(0, s) for s in seeds])
        assert with_warm >= scratch - 0.05

    def test_factorized_model_fewer_macs(self, rng):
        from repro.metrics import measure_macs

        model = small_cnn()
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert measure_macs(hybrid, x) < measure_macs(model, x)


class TestLanguageModelLearns:
    def test_lstm_lm_beats_uniform(self, rng):
        corpus = make_lm_corpus(vocab_size=40, n_train=4000, branching=4, rng=rng)
        lm = LSTMLanguageModel(vocab_size=40, embed_dim=24, num_layers=1, dropout=0.0)
        opt = SGD(lm.parameters(), lr=2.0)
        data = batchify(corpus.train, 10)
        loss_fn = nn.CrossEntropyLoss()
        bptt = 8
        for epoch in range(3):
            states = None
            for i in range(0, len(data) - 1, bptt):
                x, y = get_lm_batch(data, i, bptt)
                opt.zero_grad()
                logits, states = lm(x, states)
                states = lm.detach_states(states)
                loss = loss_fn(logits.reshape(-1, 40), y.reshape(-1))
                loss.backward()
                clip_grad_norm(opt.params, 0.25)
                opt.step()
        final_ppl = perplexity(float(loss.data))
        assert final_ppl < 40  # uniform baseline = vocab size

    def test_factorized_lm_trains(self, rng):
        corpus = make_lm_corpus(vocab_size=30, n_train=2000, branching=4, rng=rng)
        lm = LSTMLanguageModel(vocab_size=30, embed_dim=16, num_layers=2, dropout=0.0)
        hybrid, report = build_hybrid(lm, lstm_lm_hybrid_config())
        assert report.compression > 1.0
        data = batchify(corpus.train, 8)
        opt = SGD(hybrid.parameters(), lr=1.0)
        loss_fn = nn.CrossEntropyLoss()
        losses = []
        for epoch in range(2):
            states = None
            for i in range(0, len(data) - 1, 8):
                x, y = get_lm_batch(data, i, 8)
                opt.zero_grad()
                logits, states = hybrid(x, states)
                states = hybrid.detach_states(states)
                loss = loss_fn(logits.reshape(-1, 30), y.reshape(-1))
                loss.backward()
                clip_grad_norm(opt.params, 0.25)
                opt.step()
                losses.append(float(loss.data))
        assert losses[-1] < losses[0]


class TestTransformerLearns:
    def test_copy_task_teacher_forced_accuracy(self, rng):
        from repro.data import make_translation_dataset
        from repro.models import Seq2SeqTransformer

        ds = make_translation_dataset(n=256, vocab_size=16, min_len=3, max_len=6, rng=rng)
        tr = Seq2SeqTransformer(vocab_size=16, d_model=32, n_heads=4, num_layers=2,
                                d_ff=64, dropout=0.0, max_len=16)
        opt = Adam(tr.parameters(), lr=1e-3)
        loss_fn = nn.CrossEntropyLoss(ignore_index=0)
        for epoch in range(16):
            for i in range(0, len(ds), 64):
                src = ds.src[i : i + 64]
                tgt = ds.tgt[i : i + 64]
                opt.zero_grad()
                logits = tr(src, tgt[:, :-1])
                loss = loss_fn(logits.reshape(-1, 16), tgt[:, 1:].reshape(-1))
                loss.backward()
                opt.step()
        # Teacher-forced next-token accuracy well above chance (1/13 real).
        logits = tr(ds.src[:64], ds.tgt[:64, :-1]).data
        pred = logits.argmax(axis=-1)
        mask = ds.tgt[:64, 1:] != 0
        acc = (pred == ds.tgt[:64, 1:])[mask].mean()
        assert acc > 0.25


class TestAMPIntegration:
    def test_amp_matches_fp32_closely(self, rng):
        """Table 4's AMP claim in miniature: mixed-precision training lands
        within a few points of FP32 on the same task."""

        def run(amp, seed=3):
            set_seed(seed)
            r = np.random.default_rng(seed)
            train, val = image_task(r, n=256, noise=0.15)
            model = small_cnn()
            t = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9), amp=amp)
            t.fit(train, val, epochs=5)
            return t.history[-1].val_metric

        assert abs(run(True) - run(False)) < 0.25
