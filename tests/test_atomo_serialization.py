"""ATOMO compressor and checkpoint serialization."""

import numpy as np
import pytest

from repro.compression import Atomo, atomo_probabilities
from repro.models import MLP
from repro.optim import SGD, Adam
from repro.tensor import Tensor
from repro.utils import load_checkpoint, load_model, save_checkpoint, save_model


class TestAtomoProbabilities:
    def test_sum_equals_budget(self, rng):
        s = np.sort(np.abs(rng.standard_normal(10)))[::-1]
        p = atomo_probabilities(s, 3.0)
        assert p.sum() == pytest.approx(3.0, rel=1e-6)

    def test_probabilities_in_unit_interval(self, rng):
        s = np.abs(rng.standard_normal(8)) * 10
        p = atomo_probabilities(s, 4.0)
        assert np.all(p >= 0) and np.all(p <= 1.0 + 1e-12)

    def test_dominant_atom_clipped_to_one(self):
        s = np.array([100.0, 1.0, 1.0, 1.0])
        p = atomo_probabilities(s, 2.0)
        assert p[0] == pytest.approx(1.0)
        assert p.sum() == pytest.approx(2.0, rel=1e-6)

    def test_budget_exceeding_count_keeps_all(self):
        s = np.array([3.0, 2.0, 1.0])
        p = atomo_probabilities(s, 10.0)
        assert np.allclose(p, 1.0)

    def test_zero_spectrum(self):
        assert np.allclose(atomo_probabilities(np.zeros(5), 2.0), 0.0)

    def test_monotone_in_sigma(self, rng):
        s = np.array([5.0, 3.0, 1.0, 0.5])
        p = atomo_probabilities(s, 2.0)
        assert np.all(np.diff(p) <= 1e-12)


class TestAtomoCompressor:
    def test_unbiased(self, rng):
        comp = Atomo(1, budget=3)
        g = [rng.standard_normal((10, 8)).astype(np.float32)]
        est = np.mean(
            [comp.decode_aggregate([comp.encode(0, g)])[0] for _ in range(400)],
            axis=0,
        )
        err = np.linalg.norm(est - g[0]) / np.linalg.norm(g[0])
        assert err < 0.25

    def test_exact_when_budget_covers_rank(self, rng):
        comp = Atomo(1, budget=100)
        g = [rng.standard_normal((6, 4)).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.allclose(agg[0], g[0], atol=1e-4)

    def test_vectors_sent_raw(self, rng):
        comp = Atomo(1, budget=2)
        g = [rng.standard_normal(7).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert np.allclose(agg[0], g[0], atol=1e-6)

    def test_conv_shapes_restored(self, rng):
        comp = Atomo(1, budget=2)
        g = [rng.standard_normal((8, 4, 3, 3)).astype(np.float32)]
        agg = comp.decode_aggregate([comp.encode(0, g)])
        assert agg[0].shape == (8, 4, 3, 3)

    def test_wire_bytes_scale_with_kept_atoms(self, rng):
        small = Atomo(1, budget=1)
        big = Atomo(1, budget=8)
        g = [rng.standard_normal((32, 32)).astype(np.float32)]
        b_small = np.mean([small.encode(0, g).nbytes for _ in range(20)])
        b_big = np.mean([big.encode(0, g).nbytes for _ in range(20)])
        assert b_big > b_small

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            Atomo(1, budget=0)

    def test_not_allreduce_compatible(self):
        assert not Atomo(1).allreduce_compatible

    def test_per_step_svd_cost_vs_pufferfish_one_time(self, rng):
        """The paper's motivating comparison: ATOMO pays an SVD per batch;
        Pufferfish pays one SVD total.  Over N steps ATOMO's cumulative
        factorization work exceeds the one-time conversion."""
        import time

        from repro.core import FactorizationConfig, build_hybrid

        model = MLP(64, [128, 128], 10)
        grads = [p.data.copy() for p in model.parameters()]
        comp = Atomo(1, budget=2)

        t0 = time.perf_counter()
        for _ in range(20):  # 20 "batches"
            comp.encode(0, grads)
        atomo_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        pufferfish_seconds = time.perf_counter() - t0
        assert atomo_seconds > pufferfish_seconds


class TestSerialization:
    def test_model_roundtrip(self, tmp_path, rng):
        m1 = MLP(8, [16], 4)
        save_model(m1, tmp_path / "m.npz")
        m2 = MLP(8, [16], 4)
        load_model(m2, tmp_path / "m.npz")
        x = Tensor(rng.standard_normal((3, 8)))
        assert np.allclose(m1(x).data, m2(x).data)

    def test_checkpoint_restores_optimizer_momentum(self, tmp_path, rng):
        m1 = MLP(6, [8], 3)
        opt1 = SGD(m1.parameters(), lr=0.1, momentum=0.9)
        x = Tensor(rng.standard_normal((4, 6)))
        (m1(x) ** 2).sum().backward()
        opt1.step()  # creates momentum buffers
        save_checkpoint(tmp_path / "c.npz", m1, opt1, epoch=7)

        m2 = MLP(6, [8], 3)
        opt2 = SGD(m2.parameters(), lr=0.5, momentum=0.9)
        meta = load_checkpoint(tmp_path / "c.npz", m2, opt2)
        assert meta["epoch"] == 7
        assert opt2.lr == pytest.approx(0.1)
        for p1, p2 in zip(opt1.params, opt2.params):
            s1 = opt1.state.get(id(p1), {})
            s2 = opt2.state.get(id(p2), {})
            assert set(s1) == set(s2)
            for k in s1:
                assert np.allclose(s1[k], s2[k])

    def test_checkpoint_restores_adam_state(self, tmp_path, rng):
        m1 = MLP(6, [8], 3)
        opt1 = Adam(m1.parameters(), lr=1e-3)
        x = Tensor(rng.standard_normal((4, 6)))
        (m1(x) ** 2).sum().backward()
        opt1.step()
        save_checkpoint(tmp_path / "c.npz", m1, opt1)

        m2 = MLP(6, [8], 3)
        opt2 = Adam(m2.parameters(), lr=1e-3)
        load_checkpoint(tmp_path / "c.npz", m2, opt2)
        p2 = opt2.params[0]
        state = opt2.state[id(p2)]
        assert state["step"] == 1
        assert "m" in state and "v" in state

    def test_resumed_training_matches_uninterrupted(self, tmp_path, rng):
        """Save/load mid-training must not change the trajectory."""
        from repro.utils import set_seed

        def fresh():
            set_seed(77)
            m = MLP(6, [8], 3)
            return m, SGD(m.parameters(), lr=0.1, momentum=0.9)

        x = rng.standard_normal((8, 6)).astype(np.float32)

        def step(m, opt):
            opt.zero_grad()
            (m(Tensor(x)) ** 2).sum().backward()
            opt.step()

        # Uninterrupted: 4 steps.
        m_ref, opt_ref = fresh()
        for _ in range(4):
            step(m_ref, opt_ref)

        # Interrupted after 2 steps.
        m_a, opt_a = fresh()
        step(m_a, opt_a)
        step(m_a, opt_a)
        save_checkpoint(tmp_path / "mid.npz", m_a, opt_a)
        m_b, opt_b = fresh()
        load_checkpoint(tmp_path / "mid.npz", m_b, opt_b)
        step(m_b, opt_b)
        step(m_b, opt_b)

        for (_, p_ref), (_, p_b) in zip(m_ref.named_parameters(), m_b.named_parameters()):
            assert np.allclose(p_ref.data, p_b.data, atol=1e-6)

    def test_checkpoint_works_on_hybrid_models(self, tmp_path, rng):
        from repro.core import FactorizationConfig, build_hybrid

        model = MLP(8, [32, 32], 4)
        hybrid, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        save_model(hybrid, tmp_path / "h.npz")
        hybrid2, _ = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        load_model(hybrid2, tmp_path / "h.npz")
        x = Tensor(rng.standard_normal((2, 8)))
        assert np.allclose(hybrid(x).data, hybrid2(x).data)

    def test_strict_load_rejects_wrong_architecture(self, tmp_path):
        save_model(MLP(8, [16], 4), tmp_path / "m.npz")
        wrong = MLP(8, [32], 4)
        with pytest.raises((KeyError, ValueError)):
            load_model(wrong, tmp_path / "m.npz")
