"""Pufferfish vs the pruning baselines: LTH and Early-Bird tickets.

Miniature version of the paper's Figure 5 and Table 7 on a VGG-19-class
model: one Pufferfish run against (a) iterative magnitude pruning with
rewinding, and (b) EB Train structured channel pruning.

Run:  python examples/pruning_comparison.py
"""

import time

import numpy as np

from repro.core import PufferfishTrainer, Trainer
from repro.data import DataLoader, make_cifar_like
from repro.models import vgg19, vgg19_hybrid_config
from repro.optim import SGD, MultiStepLR
from repro.pruning import (
    EarlyBirdDetector,
    LTHRunner,
    bn_l1_penalty_grad,
    prune_vgg,
)
from repro.utils import set_seed

EPOCHS = 5
WIDTH = 0.125


def loaders():
    ds = make_cifar_like(n=256, num_classes=4, noise=0.3, rng=np.random.default_rng(9))
    tr, va = ds.split(204)
    return (DataLoader(tr.images, tr.labels, 32, shuffle=True),
            DataLoader(va.images, va.labels, 64))


def new_optimizer(params):
    return SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-4)


def main():
    # ----------------------------------------------------- Pufferfish ----
    set_seed(9)
    train, val = loaders()
    t0 = time.perf_counter()
    pt = PufferfishTrainer(
        vgg19(num_classes=4, width_mult=WIDTH),
        vgg19_hybrid_config(0.25),
        optimizer_factory=new_optimizer,
        scheduler_factory=lambda o: MultiStepLR(o, [4], gamma=0.1),
        warmup_epochs=2,
        total_epochs=EPOCHS,
    )
    pt.fit(train, val)
    pf_seconds = time.perf_counter() - t0
    print(f"Pufferfish: {pt.report.params_after:,} params "
          f"({pt.report.compression:.2f}x smaller), "
          f"best acc {max(s.val_metric for s in pt.history):.3f}, "
          f"{pf_seconds:.1f}s total")

    # ------------------------------------------------------------ LTH ----
    set_seed(9)
    train, val = loaders()

    def train_fn(model, post_step):
        opt = new_optimizer(model.parameters())
        t = Trainer(model, opt, scheduler=MultiStepLR(opt, [4], gamma=0.1),
                    post_step=post_step)
        t.fit(train, val, epochs=EPOCHS)
        return max(s.val_metric for s in t.history)

    runner = LTHRunner(lambda: vgg19(num_classes=4, width_mult=WIDTH),
                       train_fn, prune_fraction=0.3)
    for h in runner.run(4):
        print(f"LTH round {h.round_index + 1}: {h.remaining_params:,} weights left "
              f"({h.sparsity:.1%} pruned), acc {h.val_metric:.3f}, "
              f"cumulative {h.cumulative_seconds:.1f}s")

    # ------------------------------------------------------- EB Train ----
    set_seed(9)
    train, val = loaders()
    model = vgg19(num_classes=4, width_mult=WIDTH)
    detector = EarlyBirdDetector(prune_ratio=0.3, threshold=0.15, patience=2)
    opt = new_optimizer(model.parameters())
    trainer = Trainer(model, opt)
    for epoch in range(EPOCHS):
        # Search phase with the network-slimming L1 regularizer on BN γ.
        trainer.fit(train, val, epochs=1, start_epoch=epoch)
        bn_l1_penalty_grad(model, coeff=1e-3)
        if detector.update(model, epoch):
            print(f"EB ticket drawn at epoch {epoch}")
            break
    slim = prune_vgg(model, detector.mask)
    t = Trainer(slim, new_optimizer(slim.parameters()))
    t.fit(train, val, epochs=2)
    print(f"EB Train: {slim.num_parameters():,} params, "
          f"acc {max(s.val_metric for s in t.history):.3f}")


if __name__ == "__main__":
    main()
