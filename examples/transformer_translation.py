"""Pufferfish on a Transformer translation task (the paper's WMT16
experiment, Table 3, at laptop scale).

The synthetic task is "reverse and relabel": the target sequence is the
source mapped through a fixed vocabulary permutation and reversed, so the
decoder must genuinely use positional attention.  BLEU is computed from
greedy decoding.

Run:  python examples/transformer_translation.py
"""

import numpy as np

from repro import nn
from repro.core import build_hybrid
from repro.data import make_translation_dataset
from repro.metrics import corpus_bleu, perplexity
from repro.models import Seq2SeqTransformer, transformer_hybrid_config
from repro.optim import Adam
from repro.tensor import no_grad
from repro.utils import set_seed

VOCAB = 20
EPOCHS = 12
WARMUP = 4
BATCH = 64
LR = 2e-3

set_seed(0)
full = make_translation_dataset(n=768, vocab_size=VOCAB, min_len=4, max_len=8,
                                rng=np.random.default_rng(0))
train_ds, val_ds = full.split(650)
loss_fn = nn.CrossEntropyLoss(ignore_index=0, label_smoothing=0.1)


def make_model():
    return Seq2SeqTransformer(vocab_size=VOCAB, d_model=32, n_heads=4, num_layers=2,
                              d_ff=64, dropout=0.0, max_len=16)


def train(model, epochs):
    opt = Adam(model.parameters(), lr=LR)
    for epoch in range(epochs):
        model.train()
        for i in range(0, len(train_ds), BATCH):
            src = train_ds.src[i : i + BATCH]
            tgt = train_ds.tgt[i : i + BATCH]
            opt.zero_grad()
            logits = model(src, tgt[:, :-1])
            loss_fn(logits.reshape(-1, VOCAB), tgt[:, 1:].reshape(-1)).backward()
            opt.step()


def evaluate(model, label):
    model.eval()
    with no_grad():
        logits = model(val_ds.src, val_ds.tgt[:, :-1])
        nll = nn.CrossEntropyLoss(ignore_index=0)(
            logits.reshape(-1, VOCAB), val_ds.tgt[:, 1:].reshape(-1)
        )
    hyp = model.greedy_decode(val_ds.src, bos=1, eos=2, max_len=val_ds.tgt.shape[1])
    bleu = corpus_bleu([list(h) for h in hyp], [list(t) for t in val_ds.tgt],
                       strip_ids={0, 1, 2})
    print(f"{label:<28} params={model.num_parameters():>8,}  "
          f"val ppl={perplexity(float(nll.data)):6.2f}  BLEU={bleu:6.2f}")


print("=== vanilla Transformer ===")
vanilla = make_model()
train(vanilla, EPOCHS)
evaluate(vanilla, "vanilla")

print("\n=== Pufferfish Transformer (warm-up -> SVD -> fine-tune) ===")
set_seed(0)
model = make_model()
train(model, WARMUP)
hybrid, report = build_hybrid(model, transformer_hybrid_config(rank_ratio=0.25))
print(f"factorized {len(report.replaced)} projections "
      f"({report.params_before:,} -> {report.params_after:,} params, "
      f"{report.compression:.2f}x)")
train(hybrid, EPOCHS - WARMUP)
evaluate(hybrid, "Pufferfish")
