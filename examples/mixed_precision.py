"""Mixed-precision (AMP) training with Pufferfish — the paper's Table 4/5
AMP rows at laptop scale.

Runs the same Pufferfish schedule under FP32 and under the fp16 emulation
(half-precision forward/backward round-trips, fp32 master weights, dynamic
loss scaling) and confirms the paper's claim: "the performance of
Pufferfish remains stable under mixed-precision training."

Run:  python examples/mixed_precision.py
"""

import numpy as np

from repro.core import PufferfishTrainer
from repro.data import DataLoader, make_cifar_like
from repro.models import resnet18, resnet18_hybrid_config
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 8
WARMUP = 3


def run(amp: bool) -> float:
    set_seed(4)
    ds = make_cifar_like(n=384, num_classes=4, noise=0.2, rng=np.random.default_rng(4))
    tr, va = ds.split(300)
    train = DataLoader(tr.images, tr.labels, 32, shuffle=True)
    val = DataLoader(va.images, va.labels, 64)

    model = resnet18(num_classes=4, width_mult=0.25)
    pt = PufferfishTrainer(
        model,
        resnet18_hybrid_config(model),
        optimizer_factory=lambda p: SGD(p, lr=0.05, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda o: MultiStepLR(o, [6], gamma=0.1),
        warmup_epochs=WARMUP,
        total_epochs=EPOCHS,
        amp=amp,
    )
    pt.fit(train, val)
    return max(s.val_metric for s in pt.history)


def main():
    acc_fp32 = run(amp=False)
    acc_amp = run(amp=True)
    print(f"\nPufferfish ResNet-18  FP32 acc: {acc_fp32:.3f}")
    print(f"Pufferfish ResNet-18  AMP  acc: {acc_amp:.3f}")
    print(f"gap: {abs(acc_fp32 - acc_amp):.3f} "
          f"(paper's full-scale gap: ~0.002)")


if __name__ == "__main__":
    main()
