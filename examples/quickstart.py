"""Quickstart: train a CNN with Pufferfish in ~30 lines.

The full Pufferfish procedure (Algorithm 1 of the paper) on a synthetic
CIFAR-like task:

1. a few epochs of vanilla full-rank warm-up,
2. one truncated-SVD factorization into the hybrid low-rank architecture,
3. low-rank fine-tuning for the remaining epochs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.core import FactorizationConfig, PufferfishTrainer
from repro.data import DataLoader, make_cifar_like
from repro.optim import SGD, MultiStepLR
from repro.utils import Logger, set_seed

set_seed(0)
rng = np.random.default_rng(0)

# ---------------------------------------------------------------- data ----
dataset = make_cifar_like(n=512, num_classes=4, noise=0.2, rng=rng)
train_set, val_set = dataset.split(400)
train_loader = DataLoader(train_set.images, train_set.labels, batch_size=32, shuffle=True)
val_loader = DataLoader(val_set.images, val_set.labels, batch_size=64)

# --------------------------------------------------------------- model ----
model = nn.Sequential(
    nn.Conv2d(3, 16, 3, padding=1), nn.BatchNorm2d(16), nn.ReLU(), nn.MaxPool2d(2),
    nn.Conv2d(16, 32, 3, padding=1), nn.BatchNorm2d(32), nn.ReLU(), nn.MaxPool2d(2),
    nn.Conv2d(32, 32, 3, padding=1), nn.ReLU(), nn.GlobalAvgPool2d(),
    nn.Linear(32, 4),
)
print(f"vanilla parameters: {model.num_parameters():,}")

# ---------------------------------------------------------- pufferfish ----
trainer = PufferfishTrainer(
    model,
    # Rank ratio 0.25 everywhere; first conv and last FC stay full-rank.
    FactorizationConfig(rank_ratio=0.25),
    optimizer_factory=lambda params: SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-4),
    scheduler_factory=lambda opt: MultiStepLR(opt, milestones=[8], gamma=0.1),
    warmup_epochs=3,
    total_epochs=12,
    logger=Logger("quickstart"),
)
hybrid = trainer.fit(train_loader, val_loader)

# ------------------------------------------------------------- results ----
report = trainer.report
print(f"\nfactorized {len(report.replaced)} layers, kept {len(report.kept)} full-rank")
print(f"parameters: {report.params_before:,} -> {report.params_after:,} "
      f"({report.compression:.2f}x smaller)")
print(f"one-time SVD cost: {report.svd_seconds * 1e3:.1f} ms")
best = max(s.val_metric for s in trainer.history)
print(f"best validation accuracy: {best:.3f}")
