"""Automatic per-layer rank allocation (the paper's future-work direction).

Instead of the global rank ratio 0.25, pick each layer's rank from its own
singular-value spectrum after warm-up training:

* energy policy — smallest rank retaining X% of spectral energy,
* budget policy — greedy global allocation under a parameter budget.

The script warms up a CNN, prints each layer's spectrum summary, compares
the three policies' size/accuracy trade-offs, and demonstrates the
spectral-sparsity phenomenon the paper's conclusion alludes to.

Run:  python examples/rank_allocation.py
"""

import numpy as np

from repro.core import (
    FactorizationConfig,
    PufferfishTrainer,
    Trainer,
    allocation_report,
    budget_rank_allocation,
    effective_rank,
    energy_rank_allocation,
    layer_spectra,
    stable_rank,
)
from repro.data import DataLoader, make_cifar_like
from repro.models import vgg11
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 8
WARMUP = 3


def loaders():
    ds = make_cifar_like(n=384, num_classes=4, noise=0.25, rng=np.random.default_rng(5))
    tr, va = ds.split(300)
    return (DataLoader(tr.images, tr.labels, 32, shuffle=True),
            DataLoader(va.images, va.labels, 64))


def run(config_builder, label):
    set_seed(5)
    train, val = loaders()
    model = vgg11(num_classes=4, width_mult=0.25)
    pt = PufferfishTrainer(
        model,
        FactorizationConfig(rank_ratio=0.25),
        optimizer_factory=lambda p: SGD(p, lr=0.02, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda o: MultiStepLR(o, [6], gamma=0.1),
        warmup_epochs=WARMUP,
        total_epochs=EPOCHS,
        grad_clip=5.0,
        # Evaluated on the warm-up-trained model, so spectrum-based
        # policies see trained (spectrally sparse) weights.
        config_builder=config_builder,
    )
    pt.fit(train, val)
    acc = max(s.val_metric for s in pt.history)
    print(f"{label:<24} params={pt.report.params_after:>8,}  "
          f"compression={pt.report.compression:5.2f}x  best acc={acc:.3f}")
    return pt


def main():
    # Show the spectra of a warm-up-trained model first.
    set_seed(5)
    train, val = loaders()
    probe = vgg11(num_classes=4, width_mult=0.25)
    opt = SGD(probe.parameters(), lr=0.05, momentum=0.9)
    Trainer(probe, opt).fit(train, val, epochs=WARMUP)
    print("layer spectra after warm-up (effective rank / stable rank / dim):")
    for path, s in list(layer_spectra(probe).items())[:8]:
        print(f"  {path:<16} eff={effective_rank(s):6.1f}  "
              f"stable={stable_rank(s):6.1f}  full={len(s)}")

    overrides = energy_rank_allocation(probe, energy_threshold=0.9)
    print("\nenergy-90% allocation:")
    for path, full, r, energy in allocation_report(probe, overrides)[:8]:
        print(f"  {path:<16} rank {r:>3}/{full:<3}  energy kept {energy:.3f}")

    print("\npolicy comparison (same training schedule):")
    run(lambda m: FactorizationConfig(rank_ratio=0.25), "global ratio 0.25")
    run(
        lambda m: FactorizationConfig(
            rank_overrides=energy_rank_allocation(m, 0.9)
        ),
        "energy 90%",
    )
    target = probe.num_parameters() // 3
    run(
        lambda m: FactorizationConfig(
            rank_overrides=budget_rank_allocation(m, target)
        ),
        f"budget {target:,}",
    )


if __name__ == "__main__":
    main()
