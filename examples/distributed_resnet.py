"""Distributed data-parallel training with the cluster simulator.

Reproduces the paper's core systems experiment in miniature: train a
ResNet-18 on a simulated 8-node cluster and compare the per-epoch time
breakdown (compute / encode / communication / decode) of

* vanilla SGD               — raw fp32 ring allreduce,
* Pufferfish                — smaller factorized model, same allreduce,
* PowerSGD (rank 2)         — heavy gradient compression + codec,
* Signum                    — 1-bit signs over allgather.

Run:  python examples/distributed_resnet.py
"""

import numpy as np

from repro.compression import NoCompression, PowerSGD, Signum
from repro.core import build_hybrid
from repro.data import DataLoader, make_cifar_like, shard_dataset
from repro.distributed import ClusterSpec, DistributedTrainer
from repro.models import resnet18, resnet18_hybrid_config
from repro.optim import SGD
from repro.utils import set_seed

N_NODES = 8
WORKER_BATCH = 16
EPOCHS = 2
# Bandwidth scaled so that the CPU compute : modeled communication balance
# matches the paper's V100 / 10 Gbps testbed (see DESIGN.md).
CLUSTER = ClusterSpec(N_NODES, bandwidth_gbps=0.3)


def make_loaders(rng):
    ds = make_cifar_like(n=WORKER_BATCH * N_NODES * 4, num_classes=4, noise=0.2, rng=rng)
    shards = shard_dataset(ds.images, ds.labels, N_NODES)
    return [DataLoader(x, y, WORKER_BATCH) for x, y in shards]


def run(name, model, compressor):
    set_seed(1)
    loaders = make_loaders(np.random.default_rng(1))
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = DistributedTrainer(model, opt, CLUSTER, compressor=compressor)
    total = None
    for _ in range(EPOCHS):
        total = trainer.train_epoch(loaders)
    print(f"{name:<22} compute={total.compute:6.3f}s  encode={total.encode:6.3f}s  "
          f"comm={total.comm:6.3f}s  decode={total.decode:6.3f}s  "
          f"total={total.total:6.3f}s  wire={total.bytes_per_iteration/1e6:6.2f} MB/iter")
    return total


def main():
    print(f"simulated cluster: {N_NODES} nodes @ {CLUSTER.bandwidth_gbps} Gbps, "
          f"latency {CLUSTER.latency_s*1e6:.0f} us\n")

    vanilla = resnet18(num_classes=4, width_mult=0.25)
    run("vanilla SGD", vanilla, NoCompression(N_NODES))

    base = resnet18(num_classes=4, width_mult=0.25)
    hybrid, report = build_hybrid(base, resnet18_hybrid_config(base))
    print(f"\n[pufferfish] model shrinks {report.compression:.2f}x "
          f"({report.params_before:,} -> {report.params_after:,} params)\n")
    run("Pufferfish", hybrid, NoCompression(N_NODES))

    run("PowerSGD (rank 2)", resnet18(num_classes=4, width_mult=0.25),
        PowerSGD(N_NODES, rank=2))
    run("Signum", resnet18(num_classes=4, width_mult=0.25), Signum(N_NODES))


if __name__ == "__main__":
    main()
