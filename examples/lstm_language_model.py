"""Pufferfish on a 2-layer LSTM language model (the paper's WikiText-2
experiment, Table 2, at laptop scale).

Trains the vanilla tied-embedding LSTM for a few warm-up epochs, converts
the gate matrices to rank-r factors via truncated SVD, fine-tunes, and
reports perplexity for both models side by side.

Run:  python examples/lstm_language_model.py
"""

import numpy as np

from repro import nn
from repro.core import build_hybrid
from repro.data import batchify, get_lm_batch, make_lm_corpus
from repro.metrics import perplexity
from repro.models import LSTMLanguageModel, lstm_lm_hybrid_config
from repro.optim import SGD, clip_grad_norm
from repro.tensor import no_grad
from repro.utils import set_seed

VOCAB = 80
EMBED = 64
BPTT = 16
BATCH = 16
EPOCHS = 8
WARMUP = 3
LR = 10.0

set_seed(0)
corpus = make_lm_corpus(vocab_size=VOCAB, n_train=8000, n_valid=1600, n_test=1600,
                        branching=4, rng=np.random.default_rng(0))
train_data = batchify(corpus.train, BATCH)
val_data = batchify(corpus.valid, BATCH)
loss_fn = nn.CrossEntropyLoss()


def run_epoch(model, data, opt=None):
    """One pass; returns mean NLL.  Pass opt=None for evaluation."""
    training = opt is not None
    model.train(training)
    total, count = 0.0, 0
    states = None

    def step(x, y):
        nonlocal total, count, states
        logits, states = model(x, states)
        states = model.detach_states(states)
        loss = loss_fn(logits.reshape(-1, VOCAB), y.reshape(-1))
        total += float(loss.data) * y.size
        count += y.size
        return loss

    for i in range(0, len(data) - 1, BPTT):
        x, y = get_lm_batch(data, i, BPTT)
        if training:
            opt.zero_grad()
            loss = step(x, y)
            loss.backward()
            clip_grad_norm(opt.params, 0.25)
            opt.step()
        else:
            with no_grad():
                step(x, y)
    return total / count


def train(model, epochs, lr):
    opt = SGD(model.parameters(), lr=lr)
    for epoch in range(epochs):
        train_nll = run_epoch(model, train_data, opt)
        val_nll = run_epoch(model, val_data)
        print(f"  epoch {epoch}: train ppl {perplexity(train_nll):7.2f}  "
              f"val ppl {perplexity(val_nll):7.2f}")
    return val_nll


print("=== vanilla LSTM ===")
vanilla = LSTMLanguageModel(VOCAB, embed_dim=EMBED, num_layers=2, dropout=0.2)
print(f"params: {vanilla.num_parameters():,}")
train(vanilla, EPOCHS, LR)

print("\n=== Pufferfish LSTM (warm-up -> SVD -> fine-tune) ===")
set_seed(0)
model = LSTMLanguageModel(VOCAB, embed_dim=EMBED, num_layers=2, dropout=0.2)
train(model, WARMUP, LR)
hybrid, report = build_hybrid(model, lstm_lm_hybrid_config(rank_ratio=0.25))
print(f"factorized: {report.params_before:,} -> {report.params_after:,} params "
      f"({report.compression:.2f}x), SVD took {report.svd_seconds*1e3:.0f} ms")
# Halve the LR at the switch, as the paper does for the LSTM task.
train(hybrid, EPOCHS - WARMUP, LR / 2)
